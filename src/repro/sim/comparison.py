"""Head-to-head: DTL hotness-aware self-refresh vs the RAMZzz baseline.

Runs the same capacity point, workload mix, placement, and replay model
through both policies and reports stable savings, wakeups, and migration
traffic — quantifying what the DTL's allocation knowledge and quiet-timer
planning buy over epoch-based hot/cold separation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.baselines.ramzzz import RamzzzConfig, RamzzzPolicy
from repro.dram.power import PowerState
from repro.sim.selfrefresh_sim import (SelfRefreshResult, SelfRefreshSimConfig,
                                       SelfRefreshSimulator, StepRecord)
from repro.units import NS_PER_S


@dataclass
class ComparisonResult:
    """Both policies' outcomes on the same experiment."""

    dtl: SelfRefreshResult
    ramzzz: SelfRefreshResult
    ramzzz_demotions: int
    ramzzz_wakeups: int

    def advantage(self) -> float:
        """DTL's stable-savings edge (percentage points)."""
        return self.dtl.stable_savings - self.ramzzz.stable_savings

    def to_record(self):
        """Flatten into an :class:`~repro.sim.results.ExperimentRecord`."""
        from repro.sim.results import ExperimentRecord, flatten_selfrefresh
        return ExperimentRecord(
            "ramzzz_comparison",
            {"advantage": self.advantage(),
             "ramzzz_demotions": self.ramzzz_demotions,
             "ramzzz_wakeups": self.ramzzz_wakeups,
             **{f"dtl_{key}": value for key, value in
                flatten_selfrefresh(self.dtl).items()},
             **{f"ramzzz_{key}": value for key, value in
                flatten_selfrefresh(self.ramzzz).items()}})


@dataclass
class RamzzzRunState:
    """Loop state of one RAMZzz replay — one window step per advance."""

    rng: np.random.Generator
    inner: SelfRefreshSimulator
    controller: object
    policy: RamzzzPolicy
    hsns: np.ndarray
    dsns: np.ndarray
    step_s: float
    p_touch: np.ndarray
    active_per_channel: int
    baseline_power: float
    active_power: float
    steps: list[StepRecord]
    num_steps: int
    epoch_steps: int
    migrated_before: int = 0
    step: int = 0


class RamzzzSimulator:
    """Drives :class:`RamzzzPolicy` with the windowed replay model."""

    def __init__(self, config: SelfRefreshSimConfig,
                 ramzzz: RamzzzConfig | None = None):
        # Reuse the DTL simulator's setup (controller, placement, rates)
        # but with the DTL's own self-refresh disabled.
        self.config = config
        self.ramzzz_config = ramzzz or RamzzzConfig(
            victim_granularity=config.group_granularity)
        self._dtl_sim = SelfRefreshSimulator(config)

    def begin(self) -> RamzzzRunState:
        """Build the shared substrate with RAMZzz in place of DTL SR."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        # Build the same substrate, minus the DTL SR policy.
        inner = SelfRefreshSimulator(dataclasses.replace(config))
        controller, handles = inner._build_controller()
        if controller.self_refresh is not None:
            controller.self_refresh = None  # RAMZzz replaces it
        policy = RamzzzPolicy(controller.device, controller.allocator,
                              controller.tables, controller.translation,
                              self.ramzzz_config)
        hsns, generators = inner._build_workloads(controller, handles, rng)
        rates_hz = inner._rates_hz(generators)
        dsns = inner._dsn_of(controller, hsns)
        step_s = config.step_ns / NS_PER_S
        p_touch = 1.0 - np.exp(-rates_hz * step_s)

        device = controller.device
        power_model = device.power_model
        active_per_channel = device.standby_ranks_per_channel(0)
        baseline_power = (power_model.background_power(device.state_counts())
                          + power_model.active_power(
                              config.aggregate_bandwidth_gbs))
        active_power = power_model.active_power(
            config.aggregate_bandwidth_gbs)
        return RamzzzRunState(
            rng=rng, inner=inner, controller=controller, policy=policy,
            hsns=hsns, dsns=dsns, step_s=step_s, p_touch=p_touch,
            active_per_channel=active_per_channel,
            baseline_power=baseline_power, active_power=active_power,
            steps=[], num_steps=int(config.duration_s / step_s),
            epoch_steps=max(1, int(self.ramzzz_config.epoch_ns
                                   / config.step_ns)))

    def advance(self, state: RamzzzRunState) -> bool:
        """Replay one step if any remain; True while more remain after."""
        if state.step >= state.num_steps:
            return False
        config = self.config
        controller = state.controller
        policy = state.policy
        device = controller.device
        power_model = device.power_model

        step = state.step
        now_ns = (step + 1) * config.step_ns
        touched_mask = state.rng.random(len(state.dsns)) < state.p_touch
        policy.on_batch(state.dsns[touched_mask], now_ns)
        if (step + 1) % state.epoch_steps == 0:
            policy.end_epoch(now_ns)
            state.dsns = state.inner._dsn_of(controller, state.hsns)
        migrated_now = policy.migrated_bytes_total
        step_migrated = migrated_now - state.migrated_before
        state.migrated_before = migrated_now
        counts = device.state_counts()
        migration_power = (power_model.active_power_per_gbs
                           * step_migrated / 1e9) / state.step_s
        state.steps.append(StepRecord(
            time_s=step * state.step_s,
            sr_ranks=counts[PowerState.SELF_REFRESH],
            background_power=power_model.background_power(counts)
            + state.active_power,
            migration_power=migration_power))
        state.step += 1
        return state.step < state.num_steps

    def finish(self, state: RamzzzRunState
               ) -> tuple[SelfRefreshResult, RamzzzPolicy]:
        """Summarise a fully-advanced state; returns (result, policy)."""
        result = self._summarise(self.config, state.steps,
                                 state.baseline_power,
                                 state.active_per_channel, state.policy)
        return result, state.policy

    def run(self) -> tuple[SelfRefreshResult, RamzzzPolicy]:
        """Replay the experiment; returns (result, policy)."""
        state = self.begin()
        while self.advance(state):
            pass
        return self.finish(state)

    def _summarise(self, config, steps, baseline_power, active_per_channel,
                   policy) -> SelfRefreshResult:
        savings = np.array([1.0 - step.total_power / baseline_power
                            for step in steps])
        tail = max(1, len(steps) // 3)
        stable = float(savings[-tail:].mean())
        ever = stable > 0.01
        warmup = float("inf")
        if ever:
            reached = np.nonzero(savings >= 0.9 * stable)[0]
            if len(reached):
                warmup = steps[reached[0]].time_s
        return SelfRefreshResult(
            config=config, steps=steps, baseline_power=baseline_power,
            active_ranks_per_channel=active_per_channel,
            warmup_s=warmup, stable_savings=stable,
            mean_savings=float(savings.mean()),
            sr_entries=policy.demotions, sr_exits=policy.wakeups,
            migrated_bytes=policy.migrated_bytes_total, ever_stable=ever)


def compare_policies(config: SelfRefreshSimConfig,
                     ramzzz: RamzzzConfig | None = None) -> ComparisonResult:
    """Run both policies on identical inputs."""
    dtl_result = SelfRefreshSimulator(config).run()
    ramzzz_result, policy = RamzzzSimulator(config, ramzzz).run()
    return ComparisonResult(dtl=dtl_result, ramzzz=ramzzz_result,
                            ramzzz_demotions=policy.demotions,
                            ramzzz_wakeups=policy.wakeups)


@dataclass
class PolicyComparisonRunState:
    """Both policies' replays, advanced one step at a time: the DTL leg
    runs to completion first (matching :func:`compare_policies`' serial
    order), then the RAMZzz leg."""

    dtl_sim: SelfRefreshSimulator
    dtl_state: object
    ramzzz_sim: RamzzzSimulator
    ramzzz_state: RamzzzRunState
    dtl_done: bool = False


class PolicyComparisonExperiment:
    """Registry adapter: DTL-vs-RAMZzz head-to-head from one SR config."""

    name = "ramzzz_comparison"

    def __init__(self, config: SelfRefreshSimConfig | None = None,
                 ramzzz: RamzzzConfig | None = None):
        self.config = config or SelfRefreshSimConfig()
        self.ramzzz = ramzzz

    def begin(self) -> PolicyComparisonRunState:
        """Open both legs on identical configurations."""
        dtl_sim = SelfRefreshSimulator(self.config)
        ramzzz_sim = RamzzzSimulator(self.config, self.ramzzz)
        return PolicyComparisonRunState(
            dtl_sim=dtl_sim, dtl_state=dtl_sim.begin(),
            ramzzz_sim=ramzzz_sim, ramzzz_state=ramzzz_sim.begin())

    def advance(self, state: PolicyComparisonRunState) -> bool:
        """One step of whichever leg is currently running."""
        if not state.dtl_done:
            if not state.dtl_sim.advance(state.dtl_state):
                state.dtl_done = True
            return True  # the RAMZzz leg still has work
        return state.ramzzz_sim.advance(state.ramzzz_state)

    def finish(self, state: PolicyComparisonRunState) -> ComparisonResult:
        """Pair both fully-advanced legs into the comparison result."""
        dtl_result = state.dtl_sim.finish(state.dtl_state)
        ramzzz_result, policy = state.ramzzz_sim.finish(state.ramzzz_state)
        return ComparisonResult(dtl=dtl_result, ramzzz=ramzzz_result,
                                ramzzz_demotions=policy.demotions,
                                ramzzz_wakeups=policy.wakeups)

    def run(self) -> ComparisonResult:
        """Run both policies on the configured experiment."""
        state = self.begin()
        while self.advance(state):
            pass
        return self.finish(state)


__all__ = ["ComparisonResult", "RamzzzRunState", "RamzzzSimulator",
           "PolicyComparisonRunState", "PolicyComparisonExperiment",
           "compare_policies"]
