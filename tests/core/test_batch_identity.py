"""Scalar-vs-batch bit-identity for the vectorised access datapath.

``DtlController.access_batch`` promises results identical to looping
scalar ``access()`` over the same trace: DSNs, hit classes, per-access
latency values, wake penalties, write routing, cache/counter state, and
power states all match.  Float *totals* (registry accumulators) are
compared with a tight relative tolerance because the batch path sums in
one reduction; everything integer is compared exactly (docs/PERF.md).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.config import DtlConfig
from repro.core.controller import (SCALAR_ACCESS_WARN_THRESHOLD,
                                   DtlController)
from repro.core.segment_cache import SegmentCacheConfig
from repro.dram.geometry import DramGeometry
from repro.errors import PerformanceWarning
from repro.telemetry import (EventKind, EventTrace, MetricsRegistry,
                             TraceEvent)
from repro.units import MIB

SMALL_GEOMETRY = DramGeometry(channels=2, ranks_per_channel=4,
                              rank_bytes=64 * MIB, segment_bytes=2 * MIB)
#: Tiny SMC so a few hundred accesses cross many replay-chunk boundaries.
SMALL_CACHE = SegmentCacheConfig(l1_entries=4, l2_entries=8, l2_ways=2)


def small_config(**overrides) -> DtlConfig:
    defaults = dict(geometry=SMALL_GEOMETRY, au_bytes=8 * MIB,
                    cache=SMALL_CACHE)
    defaults.update(overrides)
    return DtlConfig(**defaults)


def build_pair(config: DtlConfig, num_aus: int = 4,
               ) -> tuple[DtlController, DtlController]:
    """Two identically prepared controllers (one per datapath)."""
    pair = []
    for _ in range(2):
        controller = DtlController(config)
        controller.allocate_vm(0, num_aus * config.au_bytes)
        pair.append(controller)
    return pair[0], pair[1]


def random_trace(config: DtlConfig, n: int, seed: int,
                 num_aus: int = 4) -> tuple[np.ndarray, np.ndarray]:
    """Zipf-reuse HPAs (host-local) plus a mixed write mask."""
    rng = np.random.default_rng(seed)
    seg = config.geometry.segment_bytes
    footprint = num_aus * config.au_bytes
    segments = footprint // seg
    hot = rng.zipf(1.4, n) % segments
    hpas = hot * seg + rng.integers(0, seg, n)
    return hpas.astype(np.int64), rng.random(n) < 0.3


def run_scalar(controller: DtlController, hpas, writes, now_ns=0.0):
    return [controller.access(0, int(hpa), bool(write), now_ns=now_ns)
            for hpa, write in zip(hpas, writes)]


def assert_results_match(scalar_results, batch_result):
    assert np.array_equal([r.dsn for r in scalar_results],
                          batch_result.dsns)
    assert np.array_equal([r.dpa for r in scalar_results],
                          batch_result.dpas)
    assert np.array_equal([r.channel for r in scalar_results],
                          batch_result.channels)
    assert np.array_equal([r.rank for r in scalar_results],
                          batch_result.ranks)
    assert np.array_equal([r.latency_ns for r in scalar_results],
                          batch_result.latency_ns)
    assert np.array_equal([r.smc_l1_hit for r in scalar_results],
                          batch_result.smc_l1_hits)
    assert np.array_equal([r.smc_l2_hit for r in scalar_results],
                          batch_result.smc_l2_hits)
    assert np.array_equal([r.wake_penalty_ns for r in scalar_results],
                          batch_result.wake_penalty_ns)
    assert np.array_equal([r.routed_to_new_dsn for r in scalar_results],
                          batch_result.routed_to_new_dsn)


def assert_state_match(scalar: DtlController, batch: DtlController):
    s_smc, b_smc = scalar.translation.smc, batch.translation.smc
    for level in ("l1", "l2"):
        s_stats = getattr(s_smc, level).stats
        b_stats = getattr(b_smc, level).stats
        assert s_stats.hits == b_stats.hits
        assert s_stats.misses == b_stats.misses
        assert s_stats.invalidations == b_stats.invalidations
    assert s_smc.l1.hsns() == b_smc.l1.hsns()
    assert sorted(s_smc.l2.hsns()) == sorted(b_smc.l2.hsns())
    assert scalar.translation.table_walks == batch.translation.table_walks
    assert (scalar.translation.translation_count
            == batch.translation.translation_count)
    assert np.isclose(scalar.translation.total_latency_ns,
                      batch.translation.total_latency_ns, rtol=1e-9)
    assert scalar.access_count == batch.access_count
    for rank_id, s_rank in scalar.device.ranks.items():
        b_rank = batch.device.ranks[rank_id]
        assert s_rank.access_count == b_rank.access_count, rank_id
        assert s_rank.state is b_rank.state, rank_id
    assert (scalar.trace.counts_by_kind()
            == batch.trace.counts_by_kind())
    if scalar.self_refresh is not None:
        s_sr, b_sr = scalar.self_refresh, batch.self_refresh
        assert np.array_equal(s_sr.access_bits, b_sr.access_bits)
        assert np.array_equal(s_sr.planned, b_sr.planned)
        for channel in range(scalar.geometry.channels):
            assert s_sr.phase(channel) is b_sr.phase(channel)
            assert (s_sr._channels[channel].window_counts
                    == b_sr._channels[channel].window_counts)
    s_hist = scalar.metrics.histogram("dtl.access_latency_ns")
    b_hist = batch.metrics.histogram("dtl.access_latency_ns")
    assert s_hist.counts == b_hist.counts
    assert s_hist.count == b_hist.count
    assert np.isclose(s_hist.total, b_hist.total, rtol=1e-9)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_identity_default_policies(seed):
    config = small_config()
    scalar, batch = build_pair(config)
    hpas, writes = random_trace(config, 800, seed)
    scalar_results = run_scalar(scalar, hpas, writes)
    batch_result = batch.access_batch(0, hpas, writes)
    assert_results_match(scalar_results, batch_result)
    assert_state_match(scalar, batch)


@pytest.mark.parametrize("seed", [0, 7])
def test_identity_without_self_refresh(seed):
    config = small_config(enable_self_refresh=False,
                          enable_power_down=False)
    scalar, batch = build_pair(config)
    hpas, writes = random_trace(config, 600, seed)
    scalar_results = run_scalar(scalar, hpas, writes)
    batch_result = batch.access_batch(0, hpas, writes)
    assert_results_match(scalar_results, batch_result)
    assert_state_match(scalar, batch)


@pytest.mark.parametrize("seed", [0, 11])
def test_identity_with_migrations_in_flight(seed):
    """Writes to migrating segments replay the conflict protocol."""
    config = small_config()
    scalar, batch = build_pair(config)
    rng = np.random.default_rng(seed)
    for controller in (scalar, batch):
        live = controller.tables.live_dsns()
        free = [dsn for dsn in range(controller.geometry.total_segments)
                if not controller.tables.is_dsn_live(dsn)]
        submitted = 0
        for dsn in live:
            if submitted >= 3:
                break
            channel = controller.device_layout.channel_of_dsn(dsn)
            partner = next((f for f in free
                            if controller.device_layout.channel_of_dsn(f)
                            == channel), None)
            if partner is None:
                continue
            free.remove(partner)
            controller.migration.submit(
                controller.tables.hsn_of_dsn(dsn), dsn, partner)
            submitted += 1
        assert submitted == 3
        # Partial progress on one, completion window on another: the
        # trace exercises abort, in-progress, and redirect routing.
        controller.migration.step_channel(0, lines=5)
        assert controller.migration.has_tracked_requests
    hpas, writes = random_trace(config, 500, seed)
    scalar_results = run_scalar(scalar, hpas, writes)
    batch_result = batch.access_batch(0, hpas, writes)
    assert_results_match(scalar_results, batch_result)
    assert_state_match(scalar, batch)
    assert (scalar.migration.stats.aborts == batch.migration.stats.aborts)
    assert (scalar.migration.stats.foreground_redirects
            == batch.migration.stats.foreground_redirects)


@pytest.mark.parametrize("seed", [0, 3])
def test_identity_across_self_refresh_phases(seed):
    """Drive channels through PROFILING/SELF_REFRESH and keep identity."""
    config = small_config(window_ns=1000.0, profiling_threshold_ns=5000.0)
    scalar, batch = build_pair(config)
    hpas, writes = random_trace(config, 400, seed)
    quiet_rank_segment = 0  # concentrate later traffic away from rank 0
    for stage, now_ns in enumerate((0.0, 2000.0, 10_000.0, 20_000.0)):
        for controller in (scalar, batch):
            controller.end_window()
            controller.tick(now_ns)
        scalar_results = run_scalar(scalar, hpas, writes, now_ns=now_ns)
        batch_result = batch.access_batch(0, hpas, writes, now_ns=now_ns)
        assert_results_match(scalar_results, batch_result)
        assert_state_match(scalar, batch)
    phases = {scalar.self_refresh.phase(c).value
              for c in range(config.geometry.channels)}
    assert phases != {"idle"}, "test never left IDLE; tighten the timers"


def test_null_telemetry_same_datapath_results():
    """The telemetry fast path changes accounting, not the datapath."""
    config = small_config()
    telemetered = DtlController(config)
    silent = DtlController(config, metrics=MetricsRegistry.null(),
                           trace=EventTrace.disabled())
    for controller in (telemetered, silent):
        controller.allocate_vm(0, 4 * config.au_bytes)
    hpas, writes = random_trace(config, 500, 5)
    loud = telemetered.access_batch(0, hpas, writes)
    quiet = silent.access_batch(0, hpas, writes)
    assert np.array_equal(loud.dsns, quiet.dsns)
    assert np.array_equal(loud.latency_ns, quiet.latency_ns)
    assert np.array_equal(loud.smc_l1_hits, quiet.smc_l1_hits)
    assert np.array_equal(loud.smc_l2_hits, quiet.smc_l2_hits)
    # Nothing was recorded on the silent side.
    assert silent.metrics.counter_values() == {}
    assert silent.trace.recorded == 0
    assert len(silent.trace) == 0
    assert not silent.metrics.enabled
    assert not silent.trace.enabled


def test_histogram_observe_batch_matches_loop():
    registry_a, registry_b = MetricsRegistry(), MetricsRegistry()
    values = np.random.default_rng(0).uniform(0, 500, 2000)
    loop = registry_a.histogram("h", bounds=(1.0, 10.0, 100.0))
    batch = registry_b.histogram("h", bounds=(1.0, 10.0, 100.0))
    for value in values:
        loop.observe(float(value))
    batch.observe_batch(values)
    assert loop.counts == batch.counts
    assert loop.count == batch.count
    assert np.isclose(loop.total, batch.total, rtol=1e-12)


def test_record_tail_tally_matches_record_loop():
    loop, tail = EventTrace(capacity=8), EventTrace(capacity=8)
    events = [TraceEvent(kind=EventKind.ACCESS, time=float(i),
                         data={"dsn": i}) for i in range(30)]
    for event in events:
        loop.record(EventKind.ACCESS, time=event.time, **event.data)
    tail.record_tail(EventKind.ACCESS, len(events), events[-8:])
    assert loop.counts_by_kind() == tail.counts_by_kind()
    assert loop.recorded == tail.recorded
    assert loop.dropped == tail.dropped
    assert [e.data for e in loop] == [e.data for e in tail]
    with pytest.raises(ValueError):
        tail.record_tail(EventKind.ACCESS, 1, events[:3])


def test_scalar_loop_performance_warning():
    config = small_config()
    controller = DtlController(config)
    controller.allocate_vm(0, config.au_bytes)
    controller._scalar_access_calls = SCALAR_ACCESS_WARN_THRESHOLD
    with pytest.warns(PerformanceWarning):
        controller.access(0, 0)
    # Warned once; further calls stay silent.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        controller.access(0, 0)
