"""Online service mode: the DTL as a long-running multi-tenant server.

The paper's translation layer is datacenter infrastructure — many VMs
against one pooled CXL device — yet everything else in this repo is a
batch experiment.  :mod:`repro.server` is the front door that closes
ROADMAP item 4: a stdlib-``asyncio`` TCP server speaking a
newline-delimited JSON protocol (:mod:`repro.server.protocol`),
dispatching each tenant's request stream onto sharded
:class:`~repro.core.controller.DtlController` instances
(:mod:`repro.server.shards` — consistent tenant→shard hashing, one
single-writer apply task per shard so the bit-exact core never sees
concurrent mutation), with token-bucket admission control and capacity
quotas (:mod:`repro.server.admission`), a live telemetry exporter,
always-on fault injection audited by the consistency checker, and a
graceful SIGTERM drain that checkpoints the whole fleet of shards for a
bit-identical restart (:mod:`repro.server.server`).

Clients: :mod:`repro.server.loadgen` is the async load generator the
``repro loadgen`` CLI and the benchmarks drive; the registered
``server-soak`` experiment (:mod:`repro.server.soak`) is the
reliability gate — ≥16 concurrent tenants under chaos with zero
invariant violations, zero cross-tenant leaks, and a proven
drain→restart identity.

See docs/SERVER.md for the protocol specification and lifecycle.
"""

from repro.server.admission import (AdmissionConfig, AdmissionController,
                                    TokenBucket)
from repro.server.loadgen import (LoadgenConfig, LoadgenReport, run_loadgen,
                                  run_loadgen_sync)
from repro.server.protocol import (MAX_LINE_BYTES, ErrorCode, ProtocolError,
                                   decode_line, encode, error_response,
                                   ok_response, render_snapshot)
from repro.server.server import (DtlServer, ServerConfig, serve_forever,
                                 server_fault_plan)
from repro.server.shards import ControllerShard, TenantRecord, shard_of
from repro.server.soak import (ServerSoakConfig, ServerSoakExperiment,
                               ServerSoakResult, quick_server_soak_config)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "TokenBucket",
    "LoadgenConfig",
    "LoadgenReport",
    "run_loadgen",
    "run_loadgen_sync",
    "MAX_LINE_BYTES",
    "ErrorCode",
    "ProtocolError",
    "decode_line",
    "encode",
    "error_response",
    "ok_response",
    "render_snapshot",
    "DtlServer",
    "ServerConfig",
    "serve_forever",
    "server_fault_plan",
    "ControllerShard",
    "TenantRecord",
    "shard_of",
    "ServerSoakConfig",
    "ServerSoakExperiment",
    "ServerSoakResult",
    "quick_server_soak_config",
]
