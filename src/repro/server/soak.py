"""The ``server-soak`` experiment: the service's reliability gate.

Three phases, one per stepping advance, each self-contained and
deterministic (so the restore-at-step-k identity suite covers this
experiment like every other):

1. **concurrent** — ≥16 tenants drive the in-process request surface of
   a chaos-armed :class:`~repro.server.server.DtlServer` through the
   async load generator while a monitor task repeatedly scans for
   cross-tenant leaks; passes only with zero audit violations and zero
   leaks.
2. **drain_restore** — a scripted sequential campaign is cut in half:
   the first half runs on a server that is then drained to a real
   checkpoint file; a second server restores from it and serves the
   tail.  Every tail response, every shard fingerprint, and the
   telemetry counters must match an undrained control run bit-for-bit.
3. **isolation** — two tenants forced onto the same shard prove their
   mapped device segments are disjoint, and a battery of admission
   rejections (quota, ownership, range) must leave the shard
   fingerprint untouched.

The phases build all of their servers inside ``advance`` and store only
plain-data summaries in the run state, so a checkpoint between phases
is small and trivially restorable.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exec.hashing import derive_seed
from repro.server.admission import AdmissionConfig
from repro.server.loadgen import LoadgenConfig, run_loadgen
from repro.server.server import DtlServer, ServerConfig
from repro.server.shards import shard_of
from repro.units import MIB

PHASES = ("concurrent", "drain_restore", "isolation")


@dataclass(frozen=True)
class ServerSoakConfig:
    """Configuration of one server soak.

    Structurally conforms to :class:`repro.sim.base.SeededConfig`
    (``replace`` / ``with_seed``) without importing :mod:`repro.sim`
    (the registry imports this module).

    Attributes:
        seed: One integer reproduces the whole soak bit-for-bit.
        tenants: Concurrent tenants in the chaos leg (the acceptance
            bar is ≥16).
        requests_per_tenant / batch / vms_per_tenant / vm_bytes /
            write_fraction / churn_every: Load-generator knobs for the
            concurrent leg (see :class:`~repro.server.loadgen.\
LoadgenConfig`).
        num_shards: Controller shards under the server.
        monitor_scans: Cross-tenant leak scans interleaved with the
            concurrent leg.
        script_tenants / script_requests: Shape of the sequential
            drain/restore campaign.
        script_batch: Accesses per scripted batch.
    """

    seed: int = 0
    tenants: int = 16
    requests_per_tenant: int = 6
    batch: int = 64
    vms_per_tenant: int = 2
    vm_bytes: int = 2 * MIB
    write_fraction: float = 0.3
    churn_every: int = 4
    num_shards: int = 2
    monitor_scans: int = 8
    script_tenants: int = 4
    script_requests: int = 24
    script_batch: int = 48

    def replace(self, **changes: Any) -> "ServerSoakConfig":
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)

    def with_seed(self, seed: int) -> "ServerSoakConfig":
        """A copy of this config that only differs in its ``seed``."""
        return dataclasses.replace(self, seed=seed)

    def server_config(self, checkpoint_path: str | None = None,
                      ) -> ServerConfig:
        """The (chaos-armed) server both legs run against."""
        return ServerConfig(
            num_shards=self.num_shards, chaos=True, chaos_seed=self.seed,
            admission=AdmissionConfig(max_tenants=max(64, self.tenants)),
            telemetry_path=None, checkpoint_path=checkpoint_path,
            seed=self.seed)

    def loadgen_config(self) -> LoadgenConfig:
        """The concurrent leg's load-generator campaign."""
        return LoadgenConfig(
            tenants=self.tenants,
            requests_per_tenant=self.requests_per_tenant,
            batch=self.batch, vms_per_tenant=self.vms_per_tenant,
            vm_bytes=self.vm_bytes, write_fraction=self.write_fraction,
            churn_every=self.churn_every,
            seed=derive_seed(self.seed, "loadgen"),
            tenant_prefix="soak-")


def quick_server_soak_config(**changes: Any) -> ServerSoakConfig:
    """A seconds-scale soak (still ≥16 tenants) for tests and smoke."""
    config = ServerSoakConfig(requests_per_tenant=3, batch=32,
                              vms_per_tenant=1, monitor_scans=4,
                              script_requests=12, script_batch=24)
    return config.replace(**changes) if changes else config


@dataclass
class ServerSoakResult:
    """Outcome of one soak (all phases)."""

    config: ServerSoakConfig
    concurrent: dict[str, Any] = field(default_factory=dict)
    drain_restore: dict[str, Any] = field(default_factory=dict)
    isolation: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every phase held its invariants."""
        return (self.concurrent.get("ok", False)
                and self.drain_restore.get("ok", False)
                and self.isolation.get("ok", False))

    def to_record(self):
        """Flatten into an :class:`~repro.sim.results.ExperimentRecord`."""
        from repro.sim.results import ExperimentRecord
        con, rep, iso = self.concurrent, self.drain_restore, self.isolation
        metrics: dict[str, Any] = {
            "tenants": self.config.tenants,
            "requests": con.get("requests", 0),
            "accesses": con.get("accesses", 0),
            "applied": con.get("applied", 0),
            "faults_injected": con.get("faults_injected", 0),
            "audits": con.get("audits", 0),
            "violations": con.get("violations", -1),
            "leak_scans": con.get("leak_scans", 0),
            "leaks": con.get("leaks", -1),
            "tail_requests": rep.get("tail_requests", 0),
            "tail_mismatches": rep.get("tail_mismatches", -1),
            "restore_fingerprint_match": rep.get("restore_match", False),
            "final_fingerprint_match": rep.get("final_match", False),
            "counters_match": rep.get("counters_match", False),
            "isolation_same_shard": iso.get("same_shard", False),
            "isolation_disjoint": iso.get("disjoint", False),
            "rejections_pure": iso.get("rejections_pure", False),
            "ok": self.ok,
        }
        return ExperimentRecord("server-soak", metrics,
                                {"violations": 0, "leaks": 0,
                                 "tail_mismatches": 0})


@dataclass
class ServerSoakState:
    """Phase progress of one stepped soak (plain data only)."""

    phase: int = 0
    concurrent: dict[str, Any] = field(default_factory=dict)
    drain_restore: dict[str, Any] = field(default_factory=dict)
    isolation: dict[str, Any] = field(default_factory=dict)


class ServerSoakExperiment:
    """Multi-tenant service soak: chaos, drain/restore, isolation."""

    name = "server-soak"

    def __init__(self, config: ServerSoakConfig | None = None):
        self.config = config if config is not None \
            else ServerSoakConfig()

    def run(self) -> ServerSoakResult:
        """Run every phase; returns the combined result."""
        state = self.begin()
        while self.advance(state):
            pass
        return self.finish(state)

    # -- stepped execution -------------------------------------------------

    def begin(self) -> ServerSoakState:
        """No phases have run yet."""
        return ServerSoakState()

    def advance(self, state: ServerSoakState) -> bool:
        """Run one phase; True while more remain after."""
        if state.phase >= len(PHASES):
            return False
        phase = PHASES[state.phase]
        if phase == "concurrent":
            state.concurrent = asyncio.run(self._run_concurrent())
        elif phase == "drain_restore":
            state.drain_restore = self._run_drain_restore()
        else:
            state.isolation = asyncio.run(self._run_isolation())
        state.phase += 1
        return state.phase < len(PHASES)

    def finish(self, state: ServerSoakState) -> ServerSoakResult:
        """Combine the phase summaries into the soak verdict."""
        return ServerSoakResult(config=self.config,
                                concurrent=state.concurrent,
                                drain_restore=state.drain_restore,
                                isolation=state.isolation)

    # -- phase 1: concurrent chaos leg -------------------------------------

    async def _run_concurrent(self) -> dict[str, Any]:
        cfg = self.config
        server = DtlServer(cfg.server_config())
        await server.start(serve_tcp=False)
        leaks: list[str] = []
        scans = 0

        async def monitor() -> None:
            nonlocal scans
            for _ in range(cfg.monitor_scans):
                # A fixed yield count keeps the interleaving (and so
                # the whole phase) deterministic.
                for _ in range(64):
                    await asyncio.sleep(0)
                scans += 1
                leaks.extend(server.leak_report())

        report, _ = await asyncio.gather(
            run_loadgen(cfg.loadgen_config(),
                        request_fn=server.handle_request),
            monitor())
        leaks.extend(server.leak_report())
        scans += 1
        await server.drain()
        for shard in server.shards:
            shard.audit()
        violations = server.audit_violations()
        faults = sum(shard.injector.report().injected_total
                     for shard in server.shards
                     if shard.injector is not None)
        return {
            "requests": report.requests,
            "accesses": report.accesses,
            "ok_responses": report.ok,
            "rejected": dict(sorted(report.rejected.items())),
            "applied": server.applied_total,
            "audits": sum(shard.audits for shard in server.shards),
            "violations": len(violations),
            "violation_messages": violations[:10],
            "faults_injected": faults,
            "leak_scans": scans,
            "leaks": len(leaks),
            "leak_messages": leaks[:10],
            "fingerprints": [shard.fingerprint()
                             for shard in server.shards],
            "ok": not violations and not leaks,
        }

    # -- phase 2: drain / restore identity ---------------------------------

    def _script(self) -> list[tuple]:
        """The deterministic sequential campaign, as plain-data ops.

        Access ops carry segment *fractions* (resolved against the
        VM's reservation at replay time) and VM *indexes* (resolved
        against the tenant's sorted live-VM set), so the same script
        replays identically on the control, drained, and restored
        servers without knowing allocator-assigned IDs up front.
        """
        cfg = self.config
        rng = np.random.default_rng(derive_seed(cfg.seed, "script"))
        names = [f"script-{index}" for index in range(cfg.script_tenants)]
        ops: list[tuple] = []
        for name in names:
            ops.append(("open", name))
            ops.append(("alloc", name, cfg.vm_bytes))
        for step in range(cfg.script_requests):
            name = names[step % len(names)]
            fractions = rng.random(cfg.script_batch).tolist()
            writes = (rng.random(cfg.script_batch)
                      < cfg.write_fraction).tolist()
            ops.append(("access", name, step % 2, fractions, writes))
            if step == cfg.script_requests // 3:
                ops.append(("close", names[-1]))
            if step == cfg.script_requests // 3 + 2:
                ops.append(("open", names[-1]))
                ops.append(("alloc", names[-1], cfg.vm_bytes))
            if step % 5 == 4:
                ops.append(("free", name, 0))
                ops.append(("alloc", name, cfg.vm_bytes))
        for name in names:
            ops.append(("close", name))
        return ops

    @staticmethod
    async def _apply_op(server: DtlServer, op: tuple,
                        t_s: float) -> dict[str, Any]:
        kind, tenant = op[0], op[1]
        request: dict[str, Any] = {"tenant": tenant, "t": t_s}
        if kind == "open":
            request["op"] = "open_tenant"
        elif kind == "alloc":
            request.update(op="allocate", bytes=op[2])
        elif kind == "close":
            request["op"] = "close"
        else:
            record = server.tenants.get(tenant)
            vms = sorted(record.vm_ids) if record is not None else []
            if not vms:
                return {"skipped": kind}
            if kind == "free":
                request.update(op="free", vm=vms[op[2] % len(vms)])
            else:  # access
                vm_id = vms[op[2] % len(vms)]
                segments = len(server.shards[record.shard].controller
                               .vm_handle(vm_id).au_ids) \
                    * server.shards[record.shard].controller \
                    .host_layout.segments_per_au
                request.update(
                    op="access_batch", vm=vm_id,
                    segments=[int(fraction * segments)
                              for fraction in op[3]],
                    writes=list(op[4]))
        return await server.handle_request(request)

    async def _apply_ops(self, server: DtlServer, ops: list[tuple],
                         start: int) -> list[dict[str, Any]]:
        return [await self._apply_op(server, op, 1.0 + 0.005 * index)
                for index, op in enumerate(ops[start:], start=start)]

    def _run_drain_restore(self) -> dict[str, Any]:
        cfg = self.config
        ops = self._script()
        cut = len(ops) // 2

        async def control_run() -> tuple[list[dict], list[str], dict]:
            server = DtlServer(cfg.server_config())
            await server.start(serve_tcp=False)
            responses = await self._apply_ops(server, ops, 0)
            await server.drain()
            return (responses,
                    [shard.fingerprint() for shard in server.shards],
                    server.metrics.counter_values())

        async def drained_run(path: str,
                              ) -> tuple[list[dict], list[str],
                                         list[str], dict]:
            first = DtlServer(cfg.server_config(checkpoint_path=path))
            await first.start(serve_tcp=False)
            await self._apply_ops(first, ops[:cut], 0)
            await first.drain()  # writes the checkpoint
            cut_prints = [shard.fingerprint() for shard in first.shards]

            second = DtlServer(cfg.server_config(checkpoint_path=path))
            second.restore(path)
            restore_prints = [shard.fingerprint()
                              for shard in second.shards]
            restore_match = restore_prints == cut_prints
            await second.start(serve_tcp=False)
            tail = await self._apply_ops(second, ops, cut)
            second.config = second.config.replace(checkpoint_path=None)
            await second.drain()
            final_prints = [shard.fingerprint()
                            for shard in second.shards]
            return (tail, final_prints,
                    ["match" if restore_match else "mismatch"],
                    second.metrics.counter_values())

        control, control_prints, control_counters = \
            asyncio.run(control_run())
        with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
            path = os.path.join(tmp, "server.ckpt")
            tail, final_prints, restore_marks, resumed_counters = \
                asyncio.run(drained_run(path))
        mismatches = sum(1 for a, b in zip(control[cut:], tail) if a != b)
        final_match = final_prints == control_prints
        counters_match = resumed_counters == control_counters
        restore_match = restore_marks == ["match"]
        return {
            "ops": len(ops),
            "cut": cut,
            "tail_requests": len(tail),
            "tail_mismatches": mismatches,
            "restore_match": restore_match,
            "final_match": final_match,
            "counters_match": counters_match,
            "ok": (mismatches == 0 and restore_match and final_match
                   and counters_match),
        }

    # -- phase 3: isolation under rejection --------------------------------

    async def _run_isolation(self) -> dict[str, Any]:
        cfg = self.config
        server = DtlServer(cfg.server_config())
        await server.start(serve_tcp=False)

        # Force two tenants onto the same shard (consistent hashing
        # makes the collision search deterministic).
        first = "iso-0"
        target = shard_of(first, cfg.num_shards)
        second = next(f"iso-{index}" for index in range(1, 1000)
                      if shard_of(f"iso-{index}", cfg.num_shards)
                      == target)

        async def call(**request: Any) -> dict[str, Any]:
            return await server.handle_request(request)

        t = 1.0
        for name in (first, second):
            await call(op="open_tenant", tenant=name, t=t)
            response = await call(op="allocate", tenant=name,
                                  bytes=cfg.vm_bytes, t=t)
            await call(op="access_batch", tenant=name,
                       vm=response["vm"],
                       segments=list(range(8)), t=t)
            t += 0.1
        shard = server.shards[target]
        dsns_first = shard.dsns_of_host(server.tenants[first].host_id)
        dsns_second = shard.dsns_of_host(server.tenants[second].host_id)
        disjoint = not (dsns_first & dsns_second)

        # Every rejection below must bounce before touching the shard.
        before = shard.fingerprint()
        quota = await call(op="allocate", tenant=first, t=t,
                           bytes=server.config.admission.quota_bytes * 2)
        foreign_vm = sorted(server.tenants[second].vm_ids)[0]
        owner = await call(op="access_batch", tenant=first, t=t,
                           vm=foreign_vm, segments=[0])
        own_vm = sorted(server.tenants[first].vm_ids)[0]
        ranged = await call(op="access_batch", tenant=first, t=t,
                            vm=own_vm, segments=[1 << 40])
        codes = [quota.get("error"), owner.get("error"),
                 ranged.get("error")]
        rejections_pure = (shard.fingerprint() == before
                          and codes == ["quota_exceeded", "not_owner",
                                        "out_of_range"])
        shard.audit()
        await server.drain()
        violations = server.audit_violations()
        return {
            "same_shard": True,
            "collision_tenant": second,
            "disjoint": disjoint,
            "rejection_codes": codes,
            "rejections_pure": rejections_pure,
            "violations": len(violations),
            "ok": (disjoint and rejections_pure and not violations),
        }


__all__ = ["PHASES", "ServerSoakConfig", "ServerSoakResult",
           "ServerSoakState", "ServerSoakExperiment",
           "quick_server_soak_config"]
