"""Tests for the TCO model."""

import pytest

from repro.analysis.tco import PAPER_DRAM_POWER_SHARE, TcoModel


@pytest.fixture
def model():
    return TcoModel()


class TestValidation:
    def test_paper_share(self):
        assert PAPER_DRAM_POWER_SHARE == 0.38

    def test_invalid_share(self):
        with pytest.raises(ValueError):
            TcoModel(dram_power_share=1.5)

    def test_invalid_pue(self):
        with pytest.raises(ValueError):
            TcoModel(pue=0.9)

    def test_invalid_savings(self, model):
        with pytest.raises(ValueError):
            model.server_power_saved_w(1.2)


class TestArithmetic:
    def test_dram_power(self, model):
        assert model.dram_power_w() == pytest.approx(152.0)

    def test_paper_headline_saving(self, model):
        """Figure 12's 31.6 % DRAM saving is ~12 % of server power."""
        share = model.server_share_saved(0.316)
        assert share == pytest.approx(0.12, abs=0.005)

    def test_fleet_power_includes_pue(self, model):
        base = model.server_power_saved_w(0.316) * model.num_servers / 1000
        assert model.fleet_power_saved_kw(0.316) == pytest.approx(
            base * model.pue)

    def test_annual_cost_scale(self, model):
        """10k servers at 31.6 % DRAM savings save several hundred
        thousand dollars a year — the TCO motivation in Section 1."""
        cost = model.annual_cost_saved_usd(0.316)
        assert 2e5 < cost < 1e6

    def test_linear_in_savings(self, model):
        assert model.annual_cost_saved_usd(0.2) == pytest.approx(
            2 * model.annual_cost_saved_usd(0.1))

    def test_report_keys(self, model):
        report = model.report(0.316)
        assert set(report) == {
            "dram_savings", "server_power_saved_w", "server_share_saved",
            "fleet_power_saved_kw", "annual_energy_saved_mwh",
            "annual_cost_saved_usd"}

    def test_zero_savings(self, model):
        assert model.annual_cost_saved_usd(0.0) == 0.0
