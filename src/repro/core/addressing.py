"""Address formats and codecs for the DTL.

Two address spaces are involved (Figures 4 and 6 of the paper):

* **HPA** (host physical address).  The high bits above the segment offset
  form the *host segment number* (HSN), which decomposes into
  ``host ID | AU ID | AU offset``.  An *allocation unit* (AU) is the minimum
  per-VM memory allocation (2 GiB by default — the smallest vMemory size of
  the top-three cloud vendors).
* **DPA** (DRAM device physical address).  From least- to most-significant:
  ``segment offset | channel | segment index | rank``.  Channel bits sit
  directly above the offset so consecutive segments interleave across
  channels, while rank bits are the most significant so that entire ranks
  can idle (Section 3.3).

The *DRAM segment number* (DSN) is the DPA stripped of its segment offset;
it uniquely names one 2 MiB segment in the device.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import _kernels
from repro.dram.geometry import DramGeometry
from repro.errors import AddressError, ConfigurationError
from repro.units import GIB, is_power_of_two, log2_int

DEFAULT_AU_BYTES = 2 * GIB
DEFAULT_MAX_HOSTS = 16  # Table 5 sizes structures "to support 16 hosts".


@dataclass(frozen=True)
class HostAddressLayout:
    """Bit layout of the host physical address (Figure 4).

    Attributes:
        geometry: Device geometry (supplies the segment size).
        au_bytes: Allocation-unit size (2 GiB by default).
        max_hosts: Number of hosts sharing the device (host-ID width).
    """

    geometry: DramGeometry
    au_bytes: int = DEFAULT_AU_BYTES
    max_hosts: int = DEFAULT_MAX_HOSTS

    def __post_init__(self) -> None:
        if not is_power_of_two(self.au_bytes):
            raise ConfigurationError("au_bytes must be a power of two")
        if not is_power_of_two(self.max_hosts):
            raise ConfigurationError("max_hosts must be a power of two")
        if self.au_bytes % self.geometry.segment_bytes:
            raise ConfigurationError(
                "AU size must be a multiple of the segment size")

    # -- widths ---------------------------------------------------------------

    @property
    def segment_offset_bits(self) -> int:
        """Bits addressing a byte within a segment."""
        return self.geometry.segment_offset_bits

    @property
    def au_offset_bits(self) -> int:
        """Bits selecting a segment within an AU."""
        return log2_int(self.au_bytes // self.geometry.segment_bytes)

    @property
    def segments_per_au(self) -> int:
        """Number of segments per allocation unit."""
        return self.au_bytes // self.geometry.segment_bytes

    @property
    def max_aus_per_host(self) -> int:
        """AUs addressable per host if the device were owned by one host."""
        return max(1, self.geometry.total_bytes // self.au_bytes)

    @property
    def au_id_bits(self) -> int:
        """Bits selecting an AU within a host's address space."""
        return log2_int(self.max_aus_per_host)

    @property
    def host_id_bits(self) -> int:
        """Bits selecting the host."""
        return log2_int(self.max_hosts)

    @property
    def hsn_bits(self) -> int:
        """Total width of a host segment number."""
        return self.host_id_bits + self.au_id_bits + self.au_offset_bits

    # -- codecs ---------------------------------------------------------------

    def hsn_of_hpa(self, hpa: int) -> int:
        """Host segment number containing ``hpa``."""
        if hpa < 0:
            raise AddressError(f"negative HPA {hpa:#x}")
        return hpa >> self.segment_offset_bits

    def offset_of_hpa(self, hpa: int) -> int:
        """Byte offset of ``hpa`` within its segment."""
        if hpa < 0:
            raise AddressError(f"negative HPA {hpa:#x}")
        return hpa & (self.geometry.segment_bytes - 1)

    def pack_hsn(self, host_id: int, au_id: int, au_offset: int) -> int:
        """Assemble an HSN from its fields."""
        if not 0 <= host_id < self.max_hosts:
            raise AddressError(f"host_id {host_id} out of range")
        if not 0 <= au_id < self.max_aus_per_host:
            raise AddressError(f"au_id {au_id} out of range")
        if not 0 <= au_offset < self.segments_per_au:
            raise AddressError(f"au_offset {au_offset} out of range")
        return ((host_id << (self.au_id_bits + self.au_offset_bits))
                | (au_id << self.au_offset_bits)
                | au_offset)

    def unpack_hsn(self, hsn: int) -> tuple[int, int, int]:
        """Split an HSN into ``(host_id, au_id, au_offset)``."""
        if not 0 <= hsn < (1 << self.hsn_bits):
            raise AddressError(f"HSN {hsn:#x} out of range")
        au_offset = hsn & (self.segments_per_au - 1)
        au_id = (hsn >> self.au_offset_bits) & (self.max_aus_per_host - 1)
        host_id = hsn >> (self.au_offset_bits + self.au_id_bits)
        return host_id, au_id, au_offset

    def hpa_of(self, hsn: int, offset: int = 0) -> int:
        """Reconstruct an HPA from HSN and intra-segment offset."""
        if not 0 <= offset < self.geometry.segment_bytes:
            raise AddressError(f"offset {offset} out of range")
        return (hsn << self.segment_offset_bits) | offset

    # -- batch codecs ---------------------------------------------------------

    def hsn_of_hpa_batch(self, hpas: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`hsn_of_hpa` over an int64 HPA array."""
        hpas = np.asarray(hpas, dtype=np.int64)
        if len(hpas) and int(hpas.min()) < 0:
            raise AddressError("negative HPA in batch")
        return hpas >> self.segment_offset_bits

    def offset_of_hpa_batch(self, hpas: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`offset_of_hpa` over an int64 HPA array."""
        hpas = np.asarray(hpas, dtype=np.int64)
        if len(hpas) and int(hpas.min()) < 0:
            raise AddressError("negative HPA in batch")
        return hpas & (self.geometry.segment_bytes - 1)

    def split_hpa_batch(self, hpas: np.ndarray,
                        ) -> tuple[np.ndarray, np.ndarray]:
        """``(hsns, offsets)`` in one pass; fused kernel when enabled.

        Equivalent to calling :meth:`hsn_of_hpa_batch` and
        :meth:`offset_of_hpa_batch` on the same array, but the input is
        validated and read once.  With ``REPRO_NUMBA=1`` and numba
        importable the split runs as a single compiled loop.
        """
        hpas = np.asarray(hpas, dtype=np.int64)
        fused = _kernels.split_hpa_batch(
            hpas, self.segment_offset_bits, self.geometry.segment_bytes - 1)
        if fused is not None:  # pragma: no cover - numba leg only
            hsns, offsets, in_range = fused
            if not in_range:
                raise AddressError("negative HPA in batch")
            return hsns, offsets
        if len(hpas) and int(hpas.min()) < 0:
            raise AddressError("negative HPA in batch")
        return (hpas >> self.segment_offset_bits,
                hpas & (self.geometry.segment_bytes - 1))

    def pack_hsn_batch(self, host_id: int, au_ids: np.ndarray,
                       au_offsets: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`pack_hsn` for one host over paired arrays."""
        if not 0 <= host_id < self.max_hosts:
            raise AddressError(f"host_id {host_id} out of range")
        au_ids = np.asarray(au_ids, dtype=np.int64)
        au_offsets = np.asarray(au_offsets, dtype=np.int64)
        if len(au_ids) and not (0 <= int(au_ids.min())
                                and int(au_ids.max()) < self.max_aus_per_host):
            raise AddressError("au_id out of range in batch")
        if len(au_offsets) and not (0 <= int(au_offsets.min())
                                    and int(au_offsets.max())
                                    < self.segments_per_au):
            raise AddressError("au_offset out of range in batch")
        return ((host_id << (self.au_id_bits + self.au_offset_bits))
                | (au_ids << self.au_offset_bits)
                | au_offsets)


@dataclass(frozen=True)
class SegmentLocation:
    """Physical placement of one segment: ``(channel, rank, index)``."""

    channel: int
    rank: int
    index: int

    @property
    def rank_id(self) -> tuple[int, int]:
        """The ``(channel, rank)`` pair owning the segment."""
        return (self.channel, self.rank)


@dataclass(frozen=True)
class DeviceAddressLayout:
    """Bit layout of the DRAM device physical address (Figure 6)."""

    geometry: DramGeometry

    @property
    def dsn_bits(self) -> int:
        """Total width of a DRAM segment number."""
        return (self.geometry.rank_bits + self.geometry.segment_index_bits
                + self.geometry.channel_bits)

    def pack_dsn(self, location: SegmentLocation) -> int:
        """Assemble a DSN from a segment location."""
        geo = self.geometry
        if not 0 <= location.channel < geo.channels:
            raise AddressError(f"channel {location.channel} out of range")
        if not 0 <= location.rank < geo.ranks_per_channel:
            raise AddressError(f"rank {location.rank} out of range")
        if not 0 <= location.index < geo.segments_per_rank:
            raise AddressError(f"segment index {location.index} out of range")
        return ((location.rank << (geo.segment_index_bits + geo.channel_bits))
                | (location.index << geo.channel_bits)
                | location.channel)

    def unpack_dsn(self, dsn: int) -> SegmentLocation:
        """Split a DSN into its :class:`SegmentLocation`."""
        geo = self.geometry
        if not 0 <= dsn < geo.total_segments:
            raise AddressError(f"DSN {dsn:#x} out of range")
        channel = dsn & (geo.channels - 1)
        index = (dsn >> geo.channel_bits) & (geo.segments_per_rank - 1)
        rank = ((dsn >> (geo.channel_bits + geo.segment_index_bits))
                & ((1 << geo.rank_bits) - 1))
        return SegmentLocation(channel=channel, rank=rank, index=index)

    def dpa_of(self, dsn: int, offset: int = 0) -> int:
        """DPA of byte ``offset`` within segment ``dsn``."""
        if not 0 <= offset < self.geometry.segment_bytes:
            raise AddressError(f"offset {offset} out of range")
        return (dsn << self.geometry.segment_offset_bits) | offset

    def dsn_of_dpa(self, dpa: int) -> int:
        """DSN containing device physical address ``dpa``."""
        if not 0 <= dpa < self.geometry.total_bytes:
            raise AddressError(f"DPA {dpa:#x} out of range")
        return dpa >> self.geometry.segment_offset_bits

    def channel_of_dsn(self, dsn: int) -> int:
        """Channel owning segment ``dsn``."""
        return dsn & (self.geometry.channels - 1)

    def rank_of_dsn(self, dsn: int) -> int:
        """Rank index (within its channel) owning segment ``dsn``.

        The shifted value is masked to ``rank_bits``: a well-formed DSN
        has nothing above the rank field, but callers that hand in wider
        packed values (DPAs shifted down, sentinel-tagged DSNs) must not
        see the stray high bits come back as a rank index.
        """
        return ((dsn >> (self.geometry.channel_bits
                         + self.geometry.segment_index_bits))
                & ((1 << self.geometry.rank_bits) - 1))

    def dsns_in_rank(self, channel: int, rank: int) -> range:
        """Iterate all DSNs of a rank — note they are *not* contiguous.

        Returns a range over segment indices; combine with :meth:`pack_dsn`.
        """
        return range(self.geometry.segments_per_rank)

    # -- batch codecs ---------------------------------------------------------

    def pack_dsn_batch(self, channel: int, rank: int,
                       indices: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`pack_dsn` for one rank's segment indices.

        Bit-identical to packing each ``SegmentLocation(channel, rank,
        index)`` scalar-wise; range checks run once on the bounds instead
        of per element.
        """
        geo = self.geometry
        if not 0 <= channel < geo.channels:
            raise AddressError(f"channel {channel} out of range")
        if not 0 <= rank < geo.ranks_per_channel:
            raise AddressError(f"rank {rank} out of range")
        indices = np.asarray(indices, dtype=np.int64)
        if len(indices) and not (0 <= int(indices.min())
                                 and int(indices.max())
                                 < geo.segments_per_rank):
            raise AddressError("segment index out of range in batch")
        base = rank << (geo.segment_index_bits + geo.channel_bits)
        return (base | (indices << geo.channel_bits)) | channel

    def unpack_dsn_batch(self, dsns: np.ndarray,
                         ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised :meth:`unpack_dsn`: ``(channels, ranks, indices)``."""
        geo = self.geometry
        dsns = np.asarray(dsns, dtype=np.int64)
        fused = _kernels.unpack_dsn_batch(
            dsns, geo.channel_bits, geo.segment_index_bits, geo.rank_bits,
            geo.total_segments)
        if fused is not None:  # pragma: no cover - numba leg only
            channels, ranks, indices, in_range = fused
            if not in_range:
                raise AddressError("DSN out of range in batch")
            return channels, ranks, indices
        if len(dsns) and not (0 <= int(dsns.min())
                              and int(dsns.max()) < geo.total_segments):
            raise AddressError("DSN out of range in batch")
        channels = dsns & (geo.channels - 1)
        indices = (dsns >> geo.channel_bits) & (geo.segments_per_rank - 1)
        ranks = ((dsns >> (geo.channel_bits + geo.segment_index_bits))
                 & ((1 << geo.rank_bits) - 1))
        return channels, ranks, indices

    def dpa_of_batch(self, dsns: np.ndarray,
                     offsets: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`dpa_of` over paired DSN/offset arrays."""
        dsns = np.asarray(dsns, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        fused = _kernels.dpa_of_batch(
            dsns, offsets, self.geometry.segment_offset_bits,
            self.geometry.segment_bytes)
        if fused is not None:  # pragma: no cover - numba leg only
            dpas, in_range = fused
            if not in_range:
                raise AddressError("offset out of range in batch")
            return dpas
        if len(offsets) and not (0 <= int(offsets.min())
                                 and int(offsets.max())
                                 < self.geometry.segment_bytes):
            raise AddressError("offset out of range in batch")
        return (dsns << self.geometry.segment_offset_bits) | offsets


__all__ = [
    "DEFAULT_AU_BYTES",
    "DEFAULT_MAX_HOSTS",
    "HostAddressLayout",
    "DeviceAddressLayout",
    "SegmentLocation",
]
