"""Tests for background (idle-bandwidth) consolidation migration."""

import pytest

from repro.core.checker import check
from repro.core.config import DtlConfig
from repro.core.controller import DtlController
from repro.dram.geometry import DramGeometry
from repro.dram.power import PowerState
from repro.units import MIB


@pytest.fixture
def controller():
    return DtlController(DtlConfig(
        geometry=DramGeometry(channels=2, ranks_per_channel=4,
                              rank_bytes=64 * MIB),
        au_bytes=16 * MIB, enable_self_refresh=False,
        background_migration=True))


def force_consolidation(controller):
    """Create a layout where power-down must migrate live segments."""
    vm_a = controller.allocate_vm(0, 96 * MIB, now_s=0.0)
    vm_b = controller.allocate_vm(0, 96 * MIB, now_s=1.0)
    controller.deallocate_vm(vm_a, now_s=2.0)
    return vm_b


class TestDeferredPowerDown:
    def test_mpsm_waits_for_copies(self, controller):
        force_consolidation(controller)
        policy = controller.power_down
        if not policy.pending_power_downs():
            pytest.skip("this layout needed no live-segment migration")
        # Victims are fenced but still in standby, holding their data.
        pending = policy.pending_power_downs()[0]
        for rank_id in pending.victims:
            assert controller.device.ranks[rank_id].state \
                is PowerState.STANDBY
        assert controller.migration.pending_count() > 0

    def test_pump_completes_power_down(self, controller):
        force_consolidation(controller)
        policy = controller.power_down
        if not policy.pending_power_downs():
            pytest.skip("no migration needed")
        pending = policy.pending_power_downs()[0]
        # Grant bandwidth until the copies drain.
        for _ in range(10_000):
            if not policy.pending_power_downs():
                break
            controller.pump_migrations(now_s=3.0, lines=4096)
        assert not policy.pending_power_downs()
        for rank_id in pending.victims:
            assert controller.device.ranks[rank_id].state is PowerState.MPSM
        check(controller, balance_tolerance=10 ** 9)

    def test_fenced_ranks_refuse_new_allocations(self, controller):
        force_consolidation(controller)
        policy = controller.power_down
        fenced = {rank_id for pending in policy.pending_power_downs()
                  for rank_id in pending.victims}
        vm = controller.allocate_vm(1, 32 * MIB, now_s=4.0)
        for au_id in vm.au_ids:
            for offset in range(controller.host_layout.segments_per_au):
                hsn = controller.host_layout.pack_hsn(1, au_id, offset)
                dsn = controller.tables.walk(hsn).dsn
                assert controller.allocator.rank_of_dsn(dsn) not in fenced

    def test_busy_channels_stall_copies(self, controller):
        force_consolidation(controller)
        if not controller.power_down.pending_power_downs():
            pytest.skip("no migration needed")
        busy = set(range(controller.geometry.channels))
        assert controller.pump_migrations(5.0, lines=64,
                                          busy_channels=busy) == 0

    def test_foreground_writes_still_consistent(self, controller):
        vm_b = force_consolidation(controller)
        # Write to the surviving VM while copies are in flight.
        for offset in range(8):
            controller.access(0, controller.hpa_of(vm_b.au_ids[0], offset),
                              is_write=True)
        for _ in range(10_000):
            if not controller.power_down.pending_power_downs():
                break
            controller.pump_migrations(now_s=6.0, lines=4096)
        check(controller, balance_tolerance=10 ** 9)


class TestCompletionWindow:
    def test_write_during_completion_window_routes_to_new_dsn(self,
                                                              controller):
        """Regression (Section 4.2): after the last line is copied the
        request sits one pump with its completion bit set and the mapping
        update pending; a foreground write in that window must reach the
        new DSN through the *live* access path."""
        force_consolidation(controller)
        engine = controller.migration
        request = None
        for channel in range(controller.geometry.channels):
            if engine._queues[channel]:
                request = engine._queues[channel][0]
                break
        if request is None:
            pytest.skip("this layout needed no live-segment migration")
        channel = engine.channel_of(request.old_dsn)
        engine.step_channel(channel, lines=request.lines_total)
        assert request.completion
        assert engine.request_for(request.old_dsn) is request
        host_id, au_id, au_offset = controller.host_layout.unpack_hsn(
            request.hsn)
        hpa = controller.hpa_of(au_id, au_offset)
        write = controller.access(host_id, hpa, is_write=True)
        assert write.routed_to_new_dsn
        assert write.dsn == request.new_dsn
        assert engine.stats.foreground_redirects == 1
        # The next pumps retire the request and update the mapping.
        for _ in range(10_000):
            if not controller.power_down.pending_power_downs():
                break
            controller.pump_migrations(now_s=3.0, lines=4096)
        read = controller.access(host_id, hpa)
        assert read.dsn == request.new_dsn
        assert not read.routed_to_new_dsn
        check(controller, balance_tolerance=10 ** 9)


class TestSynchronousDefault:
    def test_default_mode_drains_inline(self):
        controller = DtlController(DtlConfig(
            geometry=DramGeometry(channels=2, ranks_per_channel=4,
                                  rank_bytes=64 * MIB),
            au_bytes=16 * MIB, enable_self_refresh=False))
        vm_a = controller.allocate_vm(0, 96 * MIB, now_s=0.0)
        controller.allocate_vm(0, 96 * MIB, now_s=1.0)
        controller.deallocate_vm(vm_a, now_s=2.0)
        assert controller.migration.pending_count() == 0
        assert not controller.power_down.pending_power_downs()
