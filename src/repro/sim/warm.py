"""Warm-start planning for self-refresh sweeps.

The self-refresh replay is the repo's sweep workhorse (the tournament
grid, duration ladders, drift studies), and its step loop depends only
on the step index and the carried state — never on ``duration_s`` except
through the step count.  Two cells that differ *only* in ``duration_s``
therefore share their entire common prefix: the shorter run *is* the
first K steps of the longer one.

:func:`plan_selfrefresh_grid` exploits that: it groups a grid of
:class:`~repro.sim.selfrefresh_sim.SelfRefreshSimConfig` cells by their
duration-normalised config hash, picks each group's shortest duration as
the shared prefix, and emits a
:class:`~repro.exec.warmstart.WarmStartPlan` whose tasks simulate each
distinct prefix once per worker, snapshot it, and fork every cell of
the class from the snapshot (see ``repro.exec.warmstart``).

The equivalence claim is deliberately narrow — cells must be identical
in every field but ``duration_s`` (same policy, seed, workloads, drift,
geometry...).  Anything else changes the controller build or the replay
stream from step 0 and gets its own class (a singleton class still
works; its "fork" is just a restore of its own full run).
"""

from __future__ import annotations

import dataclasses
from functools import partial
from typing import Iterable

from repro.exec.hashing import stable_hash
from repro.exec.warmstart import PrefixSpec, WarmStartPlan
from repro.sim.selfrefresh_sim import (SelfRefreshRunState,
                                       SelfRefreshSimConfig,
                                       SelfRefreshSimulator)
from repro.units import NS_PER_S


def _steps_of(config: SelfRefreshSimConfig) -> int:
    """The step count ``SelfRefreshSimulator.begin`` derives."""
    return int(config.duration_s / (config.step_ns / NS_PER_S))


def prefix_class_key(config: SelfRefreshSimConfig) -> str:
    """Equivalence-class key: the config with its duration normalised out."""
    return stable_hash(dataclasses.replace(config, duration_s=0.0))


def retarget_selfrefresh(stepper: SelfRefreshSimulator,
                         state: SelfRefreshRunState) -> None:
    """Point a restored prefix state at the full cell's duration.

    ``num_steps`` is the only place ``duration_s`` enters the run state;
    everything else in the prefix (RNG position, controller state, step
    records) is the cell's own first K steps verbatim.
    """
    state.num_steps = _steps_of(stepper.config)


def plan_selfrefresh_grid(configs: Iterable[SelfRefreshSimConfig],
                          ) -> WarmStartPlan:
    """Split a grid of self-refresh cells into shared-prefix tasks.

    Cells keep their input order in the returned plan (outcome order is
    the caller's submission order, as with any ``run_tasks`` batch).
    """
    cells = list(configs)
    classes: dict[str, list[int]] = {}
    for index, config in enumerate(cells):
        classes.setdefault(prefix_class_key(config), []).append(index)

    plan = WarmStartPlan()
    specs: dict[int, PrefixSpec] = {}
    for class_key, members in classes.items():
        prefix_duration = min(cells[index].duration_s for index in members)
        prefix_config = dataclasses.replace(cells[members[0]],
                                            duration_s=prefix_duration)
        prefix_steps = _steps_of(prefix_config)
        # The snapshot memo keys off this string alone, so the step
        # count folds in explicitly (the class key normalises it out).
        prefix_key = f"{class_key}-{prefix_steps}"
        for index in members:
            specs[index] = PrefixSpec(
                experiment="selfrefresh",
                prefix_key=prefix_key,
                prefix_steps=prefix_steps,
                make_prefix_stepper=partial(SelfRefreshSimulator,
                                            prefix_config),
                make_stepper=partial(SelfRefreshSimulator, cells[index]),
                retarget=retarget_selfrefresh)
    for index, config in enumerate(cells):
        plan.add(specs[index], config)
    return plan


__all__ = [
    "plan_selfrefresh_grid",
    "prefix_class_key",
    "retarget_selfrefresh",
]
