"""Tests for the conventional-mapping baselines."""

import pytest

from repro.baselines import (InterleavedMapping, SequentialMapping,
                             StaticCxlDevice)
from repro.dram.geometry import DramGeometry
from repro.errors import AddressError, AllocationError
from repro.units import GIB, KIB, MIB


@pytest.fixture
def geometry():
    return DramGeometry(rank_bytes=256 * MIB)


class TestInterleavedMapping:
    def test_consecutive_lines_rotate_channels(self, geometry):
        mapping = InterleavedMapping(geometry)
        channels = [mapping.locate(line * 64).channel for line in range(8)]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_rotates_ranks_after_channels(self, geometry):
        mapping = InterleavedMapping(geometry)
        ranks = {mapping.locate(line * 64).rank for line in range(64)}
        assert len(ranks) == 8

    def test_small_region_touches_every_rank(self, geometry):
        """The paper's motivation: interleaving defeats rank power-down."""
        mapping = InterleavedMapping(geometry)
        assert mapping.ranks_touched(0, 64 * KIB) == 32

    def test_out_of_range(self, geometry):
        mapping = InterleavedMapping(geometry)
        with pytest.raises(AddressError):
            mapping.locate(geometry.total_bytes)

    def test_page_granular_interleave(self, geometry):
        mapping = InterleavedMapping(geometry, interleave_bytes=4096)
        assert mapping.locate(0).channel == mapping.locate(64).channel
        assert mapping.locate(0).channel != mapping.locate(4096).channel


class TestSequentialMapping:
    def test_fills_rank_by_rank(self, geometry):
        mapping = SequentialMapping(geometry)
        assert mapping.locate(0).rank_id == (0, 0)
        last = mapping.locate(geometry.rank_bytes - 1)
        assert last.rank_id == (0, 0)
        next_rank = mapping.locate(geometry.rank_bytes)
        assert next_rank.rank_id == (0, 1)

    def test_small_region_touches_one_rank(self, geometry):
        mapping = SequentialMapping(geometry)
        locations = {mapping.locate(a).rank_id
                     for a in range(0, 64 * KIB, 64)}
        assert len(locations) == 1

    def test_out_of_range(self, geometry):
        with pytest.raises(AddressError):
            SequentialMapping(geometry).locate(-1)


class TestStaticDevice:
    def test_bump_allocation(self, geometry):
        device = StaticCxlDevice(geometry)
        base_a = device.allocate(1 * GIB)
        base_b = device.allocate(1 * GIB)
        assert base_a == 0
        assert base_b == 1 * GIB
        assert device.free_bytes() == geometry.total_bytes - 2 * GIB

    def test_overflow_rejected(self, geometry):
        device = StaticCxlDevice(geometry)
        with pytest.raises(AllocationError):
            device.allocate(geometry.total_bytes + 1)

    def test_access_has_no_translation_overhead(self, geometry):
        device = StaticCxlDevice(geometry)
        device.allocate(1 * GIB)
        _, latency = device.access(4096)
        assert latency == device.cxl_latency_ns

    def test_background_power_always_full(self, geometry):
        device = StaticCxlDevice(geometry)
        power = device.background_power()
        assert power == device.device.power_model.baseline_background_power()
