"""Bit-identity and memory contracts of the sharded fleet datapath.

The fleet's determinism promise: ``to_record()`` and
``telemetry_totals()`` are *bit-identical* — compared as exact floats
through JSON, no tolerance — between serial, sharded-serial, and
sharded-parallel execution, with and without node failures inside a
shard.  Plus the streaming-memory contract: the parent never holds more
than one shard's aggregate at a time.
"""

from __future__ import annotations

import gc
import json
import weakref

import pytest

from repro.exec import ExecConfig
from repro.host.scheduler import SchedulerConfig
from repro.sim import fleet as fleet_mod
from repro.sim.fleet import FleetConfig, FleetSimulator, RackConfig
from repro.sim.powerdown_sim import PowerDownSimConfig
from repro.workloads.azure import AzureTraceConfig


def _small_node() -> PowerDownSimConfig:
    return PowerDownSimConfig(
        azure=AzureTraceConfig(num_vms=4, duration_s=600.0),
        scheduler=SchedulerConfig(duration_s=600.0))


def _fingerprint(result) -> str:
    """Exact-float JSON of everything the identity contract covers."""
    return json.dumps({
        "record": result.to_record().to_dict(),
        "telemetry": result.telemetry_totals(),
    }, sort_keys=True)


def _run(num_nodes=5, shard_size=2, exec_config=None, fail_seeds=(),
         config=None):
    config = config or FleetConfig(num_nodes=num_nodes, node=_small_node(),
                                   shard_size=shard_size)
    simulator = FleetSimulator(config, exec_config)
    simulator.fail_seeds = tuple(fail_seeds)
    return simulator.run()


SERIAL = ExecConfig(workers=1)
# force_pool: the nodes are cpu_bound, so on a single-CPU host the
# heuristic would silently keep the "parallel" leg in-process and the
# identity assertion would stop testing the cross-process path.
PARALLEL = ExecConfig(workers=2, force_pool=True)


class TestBitIdentity:
    @pytest.fixture(scope="class")
    def reference(self):
        """Serial, one node per shard: the old flat fan-out shape."""
        return _run(shard_size=1, exec_config=SERIAL)

    def test_sharded_serial_matches(self, reference):
        sharded = _run(shard_size=2, exec_config=SERIAL)
        assert _fingerprint(sharded) == _fingerprint(reference)

    def test_whole_fleet_in_one_shard_matches(self, reference):
        sharded = _run(shard_size=5, exec_config=SERIAL)
        assert _fingerprint(sharded) == _fingerprint(reference)

    def test_sharded_parallel_matches(self, reference):
        parallel = _run(shard_size=2, exec_config=PARALLEL)
        assert _fingerprint(parallel) == _fingerprint(reference)

    def test_fleet_savings_exactly_equal(self, reference):
        parallel = _run(shard_size=3, exec_config=PARALLEL)
        assert parallel.fleet_savings == reference.fleet_savings  # bitwise


class TestFailureInsideShard:
    """Node 2 of 5 fails inside the middle shard; its shard-mates
    survive and every mode reports the identical result."""

    FAIL = (2,)

    @pytest.fixture(scope="class")
    def reference(self):
        return _run(shard_size=1, exec_config=SERIAL, fail_seeds=self.FAIL)

    def test_failure_is_isolated(self, reference):
        assert [node.seed for node in reference.nodes] == [0, 1, 3, 4]
        assert [f.seed for f in reference.failures] == [2]
        assert "injected failure" in reference.failures[0].error

    def test_failed_node_counted_in_telemetry(self, reference):
        totals = reference.telemetry_totals()
        assert totals["fleet.nodes_failed"] == 1.0
        assert totals["fleet.nodes_reporting"] == 4.0

    def test_sharded_serial_matches_with_failure(self, reference):
        sharded = _run(shard_size=2, exec_config=SERIAL,
                       fail_seeds=self.FAIL)
        assert _fingerprint(sharded) == _fingerprint(reference)

    def test_sharded_parallel_matches_with_failure(self, reference):
        parallel = _run(shard_size=2, exec_config=PARALLEL,
                        fail_seeds=self.FAIL)
        assert _fingerprint(parallel) == _fingerprint(reference)


class TestRackIdentity:
    def test_rack_report_identical_serial_vs_parallel(self):
        config = RackConfig(num_nodes=4, node=_small_node(), shard_size=2,
                            hosts_per_rack=2)
        serial = _run(exec_config=SERIAL, config=config)
        parallel = _run(exec_config=PARALLEL, config=config)
        assert json.dumps(serial.rack_report(), sort_keys=True) == \
            json.dumps(parallel.rack_report(), sort_keys=True)


class TestStreamingMemory:
    def test_parent_holds_at_most_one_shard_aggregate(self, monkeypatch):
        """By the time shard N streams in, every earlier shard's
        aggregate (and its counter-carrying summaries) must already be
        garbage — the streaming reducer's whole reason to exist."""
        live_aggregates = []
        original = fleet_mod._FleetAccumulator.stream

        def spy(self, index, outcome):
            gc.collect()
            assert sum(ref() is not None for ref in live_aggregates) == 0, \
                f"earlier shard aggregate still alive at shard {index}"
            if outcome.ok:
                live_aggregates.append(weakref.ref(outcome.value))
            original(self, index, outcome)

        monkeypatch.setattr(fleet_mod._FleetAccumulator, "stream", spy)
        result = _run(num_nodes=6, shard_size=2, exec_config=SERIAL)
        assert len(live_aggregates) == 3  # all three shards streamed
        gc.collect()
        assert all(ref() is None for ref in live_aggregates)
        # The retained summaries are the stripped copies.
        assert all(node.counters is None for node in result.nodes)

    def test_counter_dicts_not_retained(self):
        result = _run(num_nodes=4, shard_size=2, exec_config=SERIAL)
        assert all(node.counters is None for node in result.nodes)
        # ... yet the totals were folded before stripping.
        totals = result.telemetry_totals()
        assert totals["fleet.nodes_reporting"] == 4.0
        node_counters = {name: value for name, value in totals.items()
                        if not name.startswith("fleet.")}
        assert node_counters
        assert any(value > 0 for value in node_counters.values())

    def test_result_bytes_accounted_per_shard(self):
        result = _run(num_nodes=4, shard_size=2, exec_config=SERIAL)
        counters = result.exec_telemetry["counters"]
        assert counters["exec.tasks.completed"] == 2  # two shard tasks
        assert counters["exec.result_bytes"] > 0
