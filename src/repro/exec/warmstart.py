"""Checkpoint/fork warm-start: simulate shared prefixes once.

A parameter sweep (tournament grid, duration ladder, sensitivity scan)
often contains cells that are *identical* for their first K units of
work — same controller build, same workload replay, same RNG stream —
and only diverge afterwards.  The cold executor simulates that shared
prefix once per cell.  This module teaches the exec layer to simulate
each distinct prefix once per worker process, snapshot the run state
(:mod:`repro.checkpoint`), and fork every cell in the equivalence class
from the snapshot:

* :class:`PrefixSpec` — one cell split into (shared-prefix key,
  stepper factories).  The *prefix key* identifies the equivalence
  class; cells with equal keys share a snapshot.
* :func:`run_warm_task` — the picklable task body: obtain the prefix
  snapshot (per-process memo, then spilled snapshot in the
  :class:`~repro.exec.cache.ResultCache`, then compute), fork it, and
  drive the divergent suffix to the result.
* :func:`warm_task_key` — folds the checkpoint identity (prefix key,
  prefix step count, format version) into
  :func:`~repro.exec.hashing.task_key`, so a warm-started result can
  never collide with a cold-started one in the result cache.

Layering: this module knows nothing about simulators.  The experiment
side (``repro.sim.warm``) decides *which* cells share a prefix and how
to retarget a prefix state at a cell's full workload; this side only
memoises, forks, and accounts.  Snapshot bytes are the fork medium on
purpose — ``pickle.loads`` of the captured blob is exactly the restore
path the checkpoint contract proves bit-identical.

Accounting (on the task's metrics registry, under ``exec.``):
``warm.prefix_runs`` (prefixes simulated), ``warm.forks`` (cells forked
from a snapshot), ``warm.memo_hits`` / ``warm.spill_hits`` (snapshot
reuse from the in-process memo / the spilled cache entry).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.checkpoint import (CHECKPOINT_VERSION, Checkpoint, restore,
                              snapshot)
from repro.exec.cache import ResultCache
from repro.exec.hashing import task_key
from repro.exec.runner import EXEC_METRICS, TaskSpec

#: Per-process snapshot memo: prefix key -> checkpoint.  Worker
#: processes fill it on first use; every later cell of the same
#: equivalence class forks from memory without touching disk.
_PREFIX_MEMO: dict[str, Checkpoint] = {}

#: Result-cache key prefix for spilled prefix snapshots.
_SPILL_PREFIX = "warmstart-prefix"


def clear_prefix_memo() -> None:
    """Drop every memoised prefix snapshot (tests, memory pressure)."""
    _PREFIX_MEMO.clear()


def prefix_memo_size() -> int:
    """Number of prefix snapshots currently memoised in this process."""
    return len(_PREFIX_MEMO)


@dataclass(frozen=True)
class PrefixSpec:
    """One sweep cell split into a shared prefix and a divergent suffix.

    Attributes:
        experiment: Experiment name (labels, cache keys).
        prefix_key: Stable hash identifying the prefix equivalence
            class — typically ``stable_hash`` of the cell config with
            the divergent fields normalised out plus the prefix length.
        prefix_steps: ``advance()`` calls the shared prefix covers.
        make_prefix_stepper: Builds the stepper that simulates the
            *prefix* (the cell config truncated to the shared span).
        make_stepper: Builds the stepper for the *full* cell.
        retarget: ``(stepper, state) -> None`` — mutate a restored
            prefix state so that driving it to completion under the full
            cell's stepper yields the cell's result (e.g. raise
            ``state.num_steps`` to the cell's own duration).
    """

    experiment: str
    prefix_key: str
    prefix_steps: int
    make_prefix_stepper: Callable[[], Any]
    make_stepper: Callable[[], Any]
    retarget: Callable[[Any, Any], None]


@dataclass
class WarmOutcomeMeta:
    """How one warm task obtained its prefix (telemetry sidecar)."""

    prefix_key: str
    source: str  # "memo" | "spill" | "computed"


def warm_task_key(spec: PrefixSpec, config: Any,
                  context: Any = None) -> str:
    """Cache key of a warm-started cell.

    Folds the prefix identity (key, step count, checkpoint format
    version) into the normal :func:`task_key` context, so warm and cold
    runs of the same config key apart if the prefix machinery ever
    changes what it computes.
    """
    warm_context = {
        "warm_start": {
            "prefix": spec.prefix_key,
            "prefix_steps": spec.prefix_steps,
            "version": CHECKPOINT_VERSION,
        }
    }
    if context is not None:
        warm_context["ambient"] = context
    return task_key(spec.experiment, config, context=warm_context)


def _obtain_prefix(spec: PrefixSpec,
                   cache: ResultCache | None) -> tuple[Checkpoint, str]:
    """The prefix snapshot: memo, then spilled cache entry, then compute."""
    checkpoint = _PREFIX_MEMO.get(spec.prefix_key)
    if checkpoint is not None:
        return checkpoint, "memo"
    if cache is not None:
        hit, blob = cache.get(f"{_SPILL_PREFIX}-{spec.prefix_key}")
        if hit and isinstance(blob, Checkpoint) \
                and blob.version == CHECKPOINT_VERSION:
            _PREFIX_MEMO[spec.prefix_key] = blob
            return blob, "spill"
    stepper = spec.make_prefix_stepper()
    state = stepper.begin()
    taken = 0
    more = True
    while more and taken < spec.prefix_steps:
        more = stepper.advance(state)
        taken += 1
    checkpoint = snapshot(spec.experiment, taken, state,
                          meta={"prefix_key": spec.prefix_key})
    _PREFIX_MEMO[spec.prefix_key] = checkpoint
    if cache is not None:
        cache.put(f"{_SPILL_PREFIX}-{spec.prefix_key}", checkpoint)
    return checkpoint, "computed"


def run_warm_task(spec: PrefixSpec,
                  cache: ResultCache | None = None) -> Any:
    """Execute one cell by forking its shared prefix; returns the result.

    The fork medium is the snapshot's pickled blob: ``restore`` gives
    this cell a private copy of the prefix state (aliasing intact), the
    ``retarget`` hook points it at the cell's full workload, and the
    cell's own stepper drives the divergent suffix.
    """
    checkpoint, source = _obtain_prefix(spec, cache)
    meter = EXEC_METRICS
    meter.counter("exec.warm.forks").inc()
    if source == "computed":
        meter.counter("exec.warm.prefix_runs").inc()
    else:
        meter.counter(f"exec.warm.{source}_hits").inc()
    state = restore(checkpoint)
    stepper = spec.make_stepper()
    spec.retarget(stepper, state)
    while stepper.advance(state):
        pass
    return stepper.finish(state)


def warm_task_spec(spec: PrefixSpec, config: Any,
                   cache: ResultCache | None = None,
                   context: Any = None,
                   label: str | None = None,
                   cacheable: bool = True) -> TaskSpec:
    """Wrap one warm cell as an executor task.

    The task's cache key is :func:`warm_task_key`; the spilled-snapshot
    cache rides along as a positional argument (it is process-local
    state plus a directory path, both picklable).
    """
    key = warm_task_key(spec, config, context=context) if cacheable else None
    return TaskSpec(fn=run_warm_task, args=(spec, cache), key=key,
                    label=label or f"warm:{spec.experiment}",
                    cpu_bound=True)


@dataclass
class WarmStartPlan:
    """A batch of sweep cells grouped by shared prefix.

    Built by the experiment layer (see
    :func:`repro.sim.warm.plan_selfrefresh_grid`); consumed by
    :func:`run_tasks` via :meth:`tasks`.  ``run_tasks(stream=...)`` and
    sharding compose unchanged — warm tasks are ordinary
    :class:`TaskSpec` objects whose bodies happen to share snapshots.
    """

    specs: list[PrefixSpec] = field(default_factory=list)
    configs: list[Any] = field(default_factory=list)

    def add(self, spec: PrefixSpec, config: Any) -> None:
        self.specs.append(spec)
        self.configs.append(config)

    @property
    def num_classes(self) -> int:
        """Distinct prefix equivalence classes in the plan."""
        return len({spec.prefix_key for spec in self.specs})

    def tasks(self, cache: ResultCache | None = None,
              context: Any = None,
              cacheable: bool = True) -> list[TaskSpec]:
        """One executor task per cell, in plan order."""
        return [warm_task_spec(spec, config, cache=cache, context=context,
                               cacheable=cacheable)
                for spec, config in zip(self.specs, self.configs)]


__all__ = [
    "PrefixSpec",
    "WarmOutcomeMeta",
    "WarmStartPlan",
    "clear_prefix_memo",
    "prefix_memo_size",
    "run_warm_task",
    "warm_task_key",
    "warm_task_spec",
]
