"""Ablations on rank-level power-down design choices.

* **Group granularity** (paper testbed: CKE pairs): finer granularity
  tracks occupancy tighter and saves more, at the cost of more
  transitions — the pair constraint costs a little energy.
* **Migration bandwidth**: consolidation uses spare bandwidth; even a
  heavily throttled engine finishes long before the next VM event
  (paper: 24 GB in 1.3 s).
"""

import pytest

from repro.host.scheduler import SchedulerConfig
from repro.sim.powerdown_sim import (PowerDownSimConfig, PowerDownSimulator,
                                     energy_savings)
from repro.workloads.azure import AzureTraceConfig

from conftest import report


def quick_config(**overrides):
    defaults = dict(
        azure=AzureTraceConfig(num_vms=80, duration_s=3600.0),
        scheduler=SchedulerConfig(duration_s=3600.0),
        seed=2)
    defaults.update(overrides)
    return PowerDownSimConfig(**defaults)


def run_pair(**overrides):
    config = quick_config(**overrides)
    baseline = PowerDownSimulator(quick_config(
        enable_power_down=False, **{k: v for k, v in overrides.items()
                                    if k != "enable_power_down"})).run()
    dtl = PowerDownSimulator(config).run()
    return baseline, dtl


def test_ablation_group_granularity(benchmark):
    def sweep():
        results = {}
        for granularity in (1, 2, 4):
            baseline, dtl = run_pair(group_granularity=granularity)
            results[granularity] = (energy_savings(baseline, dtl),
                                    dtl.mean_active_ranks)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(f"{granularity} rank(s)", f"{savings:.1%}",
             f"{ranks:.2f}")
            for granularity, (savings, ranks) in results.items()]
    report("Ablation: power-down group granularity", rows,
           header=("unit", "energy savings", "mean active/ch"))
    # Finer units track occupancy at least as tightly.
    assert results[1][1] <= results[2][1] <= results[4][1]
    assert results[1][0] >= results[4][0] - 0.01


def test_ablation_migration_bandwidth(benchmark):
    def sweep():
        results = {}
        for bandwidth in (2.0, 18.0):
            _, dtl = run_pair(spare_migration_bandwidth_gbs=bandwidth)
            per_transition = dtl.migration_time_s / max(
                1, dtl.power_transitions)
            results[bandwidth] = (per_transition, dtl.migrated_bytes)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(f"{bandwidth:.0f} GB/s", f"{seconds:.2f} s",
             f"{migrated / 2**30:.1f} GiB")
            for bandwidth, (seconds, migrated) in results.items()]
    report("Ablation: migration bandwidth vs consolidation time", rows,
           header=("spare BW", "mean per transition", "total moved"))
    # Even at 2 GB/s, consolidation stays far below the 5-minute interval
    # (the paper's 1.3 s at full spare bandwidth).
    assert results[2.0][0] < 100.0
    assert results[18.0][0] < results[2.0][0]
