"""The policy plug-in protocol behind power-down and self-refresh.

The paper hard-wires three families of decisions into its controllers:
*which ranks to evacuate* (victim selection), *where to put the data*
(hotness prediction / target scoring), and *how deep to park a rank*
(MPSM vs self-refresh vs stay-active).  This module extracts those
decisions into a :class:`Policy` object so competing strategies — the
paper's CLOCK/static behaviour, Lu et al.'s rank-aware adaptive
migrations, DReAM-style online re-arrangement — plug into the *same*
controller machinery and can be compared fairly (the ``tournament``
experiment in :mod:`repro.sim.tournament`).

Import boundary (enforced by ``tests/policies/test_policy_lint.py``):
this package may import only the standard library, ``numpy``,
:mod:`repro.units`, :mod:`repro.errors`, and :mod:`repro.dram.power`.
``repro.core.power_down`` / ``repro.core.self_refresh`` import *us*, so
importing any ``repro.core`` or ``repro.sim`` module here would be a
cycle — and, more importantly, a policy that decides through privileged
controller or SMC internals cannot be compared fairly against one that
only sees the protocol surface below.

The hosts hand policies three kinds of read-only state:

* :class:`RankStats` — a per-rank snapshot (allocation, utilisation,
  access counters, power state) built fresh at each decision point.
* A *cold-segment search* (see :class:`ColdSearch`) — the bounded
  migration-table scan surface, so hotness prediction can reuse the
  CLOCK hand or walk target ranks in its own order without touching
  the table arrays directly.
* Idle-gap observations via :meth:`Policy.observe_idle_gap` — how long
  parked ranks actually stayed parked, the signal adaptive demotion
  feeds on.
"""

from __future__ import annotations

import copy
import dataclasses
import enum
from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from repro.dram.power import PowerState
from repro.units import NS_PER_MS

#: Self-refresh access-count window (0.5 ms, Section 3.4).
DEFAULT_WINDOW_NS = 0.5 * NS_PER_MS
#: Quiet time required before a victim rank migrates + sleeps (50 ms).
DEFAULT_PROFILING_THRESHOLD_NS = 50 * NS_PER_MS
#: TSP entries examined per search; the paper bounds the search at 40 ns,
#: which at one SRAM probe per 1.5 GHz cycle is 60 entries.
DEFAULT_TSP_SCAN_LIMIT = 60
#: Quiet time after a successful self-refresh entry before the channel
#: profiles for an *additional* victim rank.
DEFAULT_REVISIT_DELAY_NS = 20 * DEFAULT_PROFILING_THRESHOLD_NS


class DemotionLevel(enum.Enum):
    """How deep a policy parks a rank (or declines to park it).

    ``MPSM`` does not retain data (:meth:`PowerState.retains_data`), so
    the hosts only honour it for ranks holding no live segments and fall
    back to ``SELF_REFRESH`` otherwise.
    """

    STAY_ACTIVE = "stay_active"
    MPSM = "mpsm"
    SELF_REFRESH = "self_refresh"

    def park_state(self) -> PowerState | None:
        """The device power state this level parks a rank in."""
        if self is DemotionLevel.MPSM:
            return PowerState.MPSM
        if self is DemotionLevel.SELF_REFRESH:
            return PowerState.SELF_REFRESH
        return None


@dataclass(frozen=True)
class RankStats:
    """Read-only snapshot of one rank at a decision point.

    Attributes:
        channel / rank: Position on the device.
        allocated: Live segments in the rank.
        free: Unallocated segments in the rank.
        utilization: ``allocated / capacity``.
        access_count: Cumulative accesses the rank has served.
        window_count: Accesses in the current (open) 0.5 ms window
            (0 where the host does not track windows).
        last_window_count: Accesses in the last *closed* window.
        state: Current power state.
    """

    channel: int
    rank: int
    allocated: int
    free: int
    utilization: float
    access_count: int
    window_count: int
    last_window_count: int
    state: PowerState

    @property
    def rank_id(self) -> tuple[int, int]:
        """The ``(channel, rank)`` pair allocator APIs key on."""
        return (self.channel, self.rank)


@dataclass(frozen=True)
class PolicyConfig:
    """Every policy-adjacent knob, in one seeded, ``replace()``-able bag.

    Structurally conforms to :class:`repro.sim.base.SeededConfig`
    (``replace`` / ``with_seed``) without importing it — ``repro.sim``
    imports the controllers, which import this module, so this module
    must not import ``repro.sim``.

    The first block configures the power-down host, the second the
    self-refresh host, the third the adaptive policies; each host reads
    only its own fields, so one shared instance configures both.

    Attributes:
        name: Registry key of the policy to build (:data:`POLICIES`).
        group_granularity: Ranks per power-down victim group (2 models
            the paper's CKE-pair constraint, Section 5.1).
        min_active_groups: Rank-groups that must stay in standby.
        background_migration: Consolidation copies proceed only as idle
            bandwidth is granted; MPSM entry waits for them.
        window_ns / profiling_threshold_ns / tsp_scan_limit /
            revisit_delay_ns / victim_granularity / enable_planning:
            Self-refresh knobs (see
            :class:`~repro.core.self_refresh.HotnessSelfRefreshPolicy`).
        idle_history: Idle-gap observations retained per rank.
        min_idle_samples: Observations required before adaptive demotion
            trusts a rank's idle distribution.
        short_park_ns: Power-down demotion break-even — observed parks
            shorter than this prefer self-refresh (cheap 500 ns exit)
            over MPSM (deeper 0.068 RSU, 700 ns exit).
        sr_thrash_ns: Self-refresh residencies shorter than this signal
            wake-thrash; adaptive demotion answers STAY_ACTIVE.
        seed: Per-policy randomness seed (the built-in policies are
            deterministic; custom policies should derive any RNG here).
    """

    name: str = "paper"
    # -- power-down host ----------------------------------------------------
    group_granularity: int = 1
    min_active_groups: int = 1
    background_migration: bool = False
    # -- self-refresh host ---------------------------------------------------
    window_ns: float = DEFAULT_WINDOW_NS
    profiling_threshold_ns: float = DEFAULT_PROFILING_THRESHOLD_NS
    tsp_scan_limit: int = DEFAULT_TSP_SCAN_LIMIT
    revisit_delay_ns: float | None = None
    victim_granularity: int = 1
    enable_planning: bool = True
    # -- adaptive policies ---------------------------------------------------
    idle_history: int = 32
    min_idle_samples: int = 3
    short_park_ns: float = 1e9
    sr_thrash_ns: float = 2.5e8
    seed: int = 0

    def replace(self, **changes) -> "PolicyConfig":
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)

    def with_seed(self, seed: int) -> "PolicyConfig":
        """A copy of this config that only differs in its ``seed``."""
        return dataclasses.replace(self, seed=seed)


@runtime_checkable
class ColdSearch(Protocol):
    """Bounded cold-segment search surface handed to
    :meth:`Policy.sr_cold_partner`.

    Backed by the self-refresh host's migration table; every scan is
    bounded by ``tsp_scan_limit`` examined entries and clears access
    bits in passing (CLOCK second chance), exactly like the hardware
    TSP walk it models.
    """

    @property
    def target_ranks(self) -> list[int]:
        """Ranks cold segments may be collected from (non-victims)."""
        ...

    def window_count(self, rank: int) -> int:
        """Accesses to ``rank`` in the current (open) window."""
        ...

    def last_window_count(self, rank: int) -> int:
        """Accesses to ``rank`` in the last closed window."""
        ...

    def clock_scan(self) -> int | None:
        """The paper's TSP walk: scan the current target rank from the
        persistent CLOCK hand, rotating round-robin on both success and
        timeout.  Returns a cold DSN or ``None``."""
        ...

    def scan_rank(self, rank: int) -> int | None:
        """Scan one specific target rank from its persistent pointer
        without rotating the round-robin cursor.  Returns a cold DSN or
        ``None`` (timeout, or ``rank`` is not a target)."""
        ...


class Policy:
    """Base class for pluggable migration/demotion policies.

    Subclasses override the five decision methods; the observation
    hooks have no-op defaults.  One instance is shared by both hosts
    (the controller builds it once), so observations made on the
    power-down side inform self-refresh decisions and vice versa.

    Decision methods must be deterministic functions of their arguments
    and previously observed state: the executor's result cache and the
    scalar/batch identity suite both rely on replayability.
    """

    #: Registry key; subclasses set their own.
    name = "abstract"

    def __init__(self, config: PolicyConfig | None = None):
        self.config = config if config is not None else PolicyConfig()

    # -- decisions ---------------------------------------------------------

    def powerdown_victims(self, channel: int,
                          candidates: Sequence[RankStats],
                          count: int) -> list[int] | None:
        """Pick ``count`` victim ranks of ``channel`` for consolidation.

        ``candidates`` are the standby, migration-free ranks in the
        host's iteration order; ``len(candidates) >= count`` is
        guaranteed.  Return rank indices, or ``None`` to skip this
        power-down opportunity.
        """
        raise NotImplementedError

    def consolidation_target(self, candidates: Sequence[RankStats],
                             ) -> RankStats | None:
        """Score targets for one evacuated segment (hotness prediction).

        ``candidates`` all have free capacity and live on the victim's
        channel.  Return the chosen entry, or ``None`` when no target
        is acceptable (the host raises ``AllocationError``).
        """
        raise NotImplementedError

    def sr_victim_block(self, channel: int,
                        blocks: Sequence[tuple[int, ...]],
                        stats: dict[int, RankStats]) -> tuple[int, ...]:
        """Pick the self-refresh victim block for ``channel``.

        ``blocks`` are the aligned all-standby candidate blocks
        (``victim_granularity`` ranks each, at least two); the return
        value must be one of them (the wake path wakes whole blocks).
        """
        raise NotImplementedError

    def sr_cold_partner(self, channel: int,
                        search: ColdSearch) -> int | None:
        """Find a cold target-rank segment to swap with a hot victim.

        Called from the profiling CLOCK update; all table access goes
        through ``search``.  Returns a DSN or ``None`` (no cold entry
        within the scan bound).
        """
        raise NotImplementedError

    def demotion_level(self, site: str,
                       stats: Sequence[RankStats]) -> DemotionLevel:
        """How deep to park the ranks in ``stats``.

        ``site`` is ``"powerdown"`` (evacuated rank-group about to
        park; STAY_ACTIVE cancels the power-down before any data
        moves) or ``"sr"`` (profiled victim block about to enter
        self-refresh; STAY_ACTIVE re-arms the quiet timer instead).
        MPSM is honoured only for ranks with no live data.
        """
        raise NotImplementedError

    # -- serialisation -----------------------------------------------------

    def state_dict(self) -> dict:
        """Everything the policy has observed, as a deep copy.

        The default covers any subclass whose observation state lives in
        instance attributes (deques, dicts, lists of plain data); the
        frozen ``config`` is identity, not state, and is excluded.
        Subclasses holding unpicklable or derived state override this
        pair.
        """
        return copy.deepcopy({key: value
                              for key, value in self.__dict__.items()
                              if key != "config"})

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto this instance."""
        self.__dict__.update(copy.deepcopy(state))

    # -- observations ------------------------------------------------------

    def observe_idle_gap(self, site: str, channel: int, rank: int,
                         gap_ns: float) -> None:
        """One completed park: the rank slept ``gap_ns`` before waking.

        ``site`` is ``"powerdown"`` (MPSM/SR park duration until
        reactivation) or ``"sr"`` (self-refresh residency until an
        access woke the block).
        """

    def observe_window(self, channel: int, counts: dict[int, int]) -> None:
        """A closed 0.5 ms access window's per-rank counts."""


#: The policy registry: name -> class.
POLICIES: dict[str, type[Policy]] = {}


def register_policy(cls: type[Policy]) -> type[Policy]:
    """Class decorator adding ``cls`` to :data:`POLICIES` by its name."""
    name = cls.name
    if not name or name == "abstract":
        raise ValueError(f"{cls.__name__} needs a concrete name")
    if name in POLICIES:
        raise ValueError(f"policy {name!r} already registered")
    POLICIES[name] = cls
    return cls


def available_policies() -> tuple[str, ...]:
    """Registered policy names, sorted."""
    return tuple(sorted(POLICIES))


def make_policy(config: PolicyConfig | str | None = None) -> Policy:
    """Build the policy ``config`` names (default: the paper's)."""
    if config is None:
        config = PolicyConfig()
    elif isinstance(config, str):
        config = PolicyConfig(name=config)
    try:
        cls = POLICIES[config.name]
    except KeyError:
        raise KeyError(f"unknown policy {config.name!r}; "
                       f"choices: {sorted(POLICIES)}") from None
    return cls(config)


__all__ = [
    "DEFAULT_WINDOW_NS",
    "DEFAULT_PROFILING_THRESHOLD_NS",
    "DEFAULT_TSP_SCAN_LIMIT",
    "DEFAULT_REVISIT_DELAY_NS",
    "DemotionLevel",
    "RankStats",
    "PolicyConfig",
    "ColdSearch",
    "Policy",
    "POLICIES",
    "register_policy",
    "available_policies",
    "make_policy",
]
