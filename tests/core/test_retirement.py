"""Tests for transparent rank retirement (the reliability extension)."""

import pytest

from repro.core.config import DtlConfig
from repro.core.controller import DtlController
from repro.dram.geometry import DramGeometry
from repro.dram.power import PowerState
from repro.errors import AllocationError, PowerStateError
from repro.units import GIB, MIB


@pytest.fixture
def controller():
    return DtlController(DtlConfig(
        geometry=DramGeometry(rank_bytes=256 * MIB), au_bytes=64 * MIB))


class TestBasicRetirement:
    def test_retire_idle_rank(self, controller):
        record = controller.retire_rank(0, 7)
        assert record.migrated_segments == 0
        assert controller.device.rank(0, 7).state is PowerState.MPSM
        assert controller.retirement.is_retired((0, 7))

    def test_retire_powered_down_rank(self, controller):
        vm = controller.allocate_vm(0, 256 * MIB)
        controller.deallocate_vm(vm, now_s=1.0)  # parks idle rank-groups
        mpsm_rank = next(rank_id for rank_id, rank
                         in controller.device.ranks.items()
                         if rank.state is PowerState.MPSM)
        record = controller.retire_rank(*mpsm_rank, now_s=2.0)
        assert record.was_powered_down
        assert record.migrated_segments == 0

    def test_double_retire_rejected(self, controller):
        controller.retire_rank(0, 7)
        with pytest.raises(PowerStateError):
            controller.retire_rank(0, 7)

    def test_usable_capacity_shrinks(self, controller):
        before = controller.retirement.usable_bytes()
        controller.retire_rank(0, 7)
        assert controller.retirement.usable_bytes() == before - 256 * MIB

    def test_requires_power_down_policy(self):
        bare = DtlController(DtlConfig(
            geometry=DramGeometry(rank_bytes=256 * MIB), au_bytes=64 * MIB,
            enable_power_down=False))
        with pytest.raises(AllocationError):
            bare.retire_rank(0, 0)


class TestDataEvacuation:
    def test_live_data_survives(self, controller):
        vm = controller.allocate_vm(0, 512 * MIB)
        # Find a rank actually holding VM data.
        target = next(rank_id for rank_id in controller.allocator._allocated
                      if controller.allocator.usage(rank_id).allocated > 0)
        hsns = [controller.tables.hsn_of_dsn(dsn) for dsn in
                controller.allocator.allocated_in_rank(target)]
        record = controller.retire_rank(*target, now_s=1.0)
        assert record.migrated_segments == len(hsns)
        assert record.migrated_bytes == len(hsns) * 2 * MIB
        # Every evacuated segment is still mapped, on the same channel,
        # and off the retired rank.
        for hsn in hsns:
            dsn = controller.tables.walk(hsn).dsn
            rank_id = controller.allocator.rank_of_dsn(dsn)
            assert rank_id != target
            assert rank_id[0] == target[0]

    def test_accesses_after_retirement_avoid_rank(self, controller):
        vm = controller.allocate_vm(0, 512 * MIB)
        target = next(rank_id for rank_id in controller.allocator._allocated
                      if controller.allocator.usage(rank_id).allocated > 0)
        controller.retire_rank(*target, now_s=1.0)
        for au_index in vm.au_ids:
            for offset in range(0, 16, 4):
                result = controller.access(
                    0, controller.hpa_of(au_index, offset))
                assert (result.channel, result.rank) != target

    def test_evacuation_wakes_capacity_if_needed(self, controller):
        """A full channel wakes a powered-down rank to absorb the data."""
        vm = controller.allocate_vm(0, 1 * GIB, now_s=0.0)
        controller.power_down.maybe_power_down(0.5)
        target = next(rank_id for rank_id in controller.allocator._allocated
                      if controller.allocator.usage(rank_id).allocated > 0)
        record = controller.retire_rank(*target, now_s=1.0)
        assert record.migrated_segments > 0
        # Reserved memory is intact.
        assert controller.reserved_bytes() == 1 * GIB


class TestFencing:
    def test_retired_rank_never_reactivates(self, controller):
        controller.retire_rank(0, 7, now_s=0.0)
        # Fill the device to force every reactivation possible.
        controller.allocate_vm(0, 7 * GIB, now_s=1.0)
        assert controller.device.rank(0, 7).state is PowerState.MPSM
        assert controller.allocator.usage((0, 7)).allocated == 0

    def test_new_allocations_skip_retired_rank(self, controller):
        controller.retire_rank(1, 3, now_s=0.0)
        vm = controller.allocate_vm(0, 2 * GIB, now_s=1.0)
        assert controller.allocator.usage((1, 3)).allocated == 0

    def test_over_capacity_with_retired_ranks(self, controller):
        """Retiring a rank genuinely shrinks what the device can hold."""
        controller.retire_rank(0, 7, now_s=0.0)
        with pytest.raises(AllocationError):
            # 8 GiB device minus one 256 MiB rank cannot hold 8 GiB;
            # channel 0 runs out first.
            controller.allocate_vm(0, 8 * GIB, now_s=1.0)

    def test_quarantine_visible_in_policy(self, controller):
        controller.retire_rank(2, 5)
        assert (2, 5) in controller.power_down.quarantined_ranks()
