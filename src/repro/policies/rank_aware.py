"""Rank-aware migrations after Lu et al. (PAPERS.md).

Where the paper evacuates the *emptiest* ranks and refills the
*fullest*, Lu et al. migrate by heat: hot pages concentrate on few
ranks so the rest idle long enough for deep power states.  Translated
to this repo's rank granularity:

* power-down victims — the *coldest* standby ranks (fewest observed
  accesses), least-allocated breaking ties, so evacuation both moves
  little data and retires the ranks least likely to be woken;
* consolidation target — the *hottest* rank with free capacity, so
  displaced segments land where traffic already goes and the cold
  ranks stay quiet.

Demotion depth is adaptive (inherited from
:class:`~repro.policies.adaptive.AdaptiveDemotionPolicy`), matching the
paper's characterisation of Lu et al. as "adaptive demotions from
observed idle distributions".
"""

from __future__ import annotations

from typing import Sequence

from repro.policies.adaptive import AdaptiveDemotionPolicy
from repro.policies.protocol import RankStats, register_policy


def _heat(stats: RankStats) -> int:
    """Best available access signal: windowed counts when the SR host
    is tracking them, cumulative rank accesses otherwise."""
    windowed = stats.window_count + stats.last_window_count
    return windowed if windowed else stats.access_count


@register_policy
class RankAwareMigrationPolicy(AdaptiveDemotionPolicy):
    """Heat-ordered victims and targets, adaptive demotion depth."""

    name = "rank_aware"

    def powerdown_victims(self, channel: int,
                          candidates: Sequence[RankStats],
                          count: int) -> list[int] | None:
        ranked = sorted(
            candidates,
            key=lambda stats: (_heat(stats), stats.allocated, stats.rank),
        )
        return [stats.rank for stats in ranked[:count]]

    def consolidation_target(self, candidates: Sequence[RankStats],
                             ) -> RankStats | None:
        best: RankStats | None = None
        for stats in candidates:
            if best is None or _heat(stats) > _heat(best):
                best = stats
        return best


__all__ = ["RankAwareMigrationPolicy"]
