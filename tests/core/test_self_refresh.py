"""Tests for hotness-aware self-refresh (Section 3.4, Figure 8)."""

import numpy as np
import pytest

from repro.core.addressing import (DeviceAddressLayout, HostAddressLayout,
                                   SegmentLocation)
from repro.core.allocator import SegmentAllocator
from repro.core.migration import MigrationEngine
from repro.core.self_refresh import ChannelPhase, HotnessSelfRefreshPolicy
from repro.core.tables import TranslationTables
from repro.core.translation import TranslationEngine
from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.dram.power import PowerState
from repro.policies import PolicyConfig
from repro.units import MIB

MS = 1e6  # ns per ms


def make_stack(window_ns=0.5 * MS, threshold_ns=50 * MS, scan_limit=60,
               victim_granularity=1):
    geometry = DramGeometry(channels=2, ranks_per_channel=4,
                            rank_bytes=16 * MIB, segment_bytes=1 * MIB)
    device = DramDevice(geometry=geometry)
    allocator = SegmentAllocator(geometry)
    layout = HostAddressLayout(geometry, au_bytes=4 * MIB, max_hosts=2)
    tables = TranslationTables(layout)
    translation = TranslationEngine(layout, tables)
    migration = MigrationEngine(geometry)
    policy = HotnessSelfRefreshPolicy(
        device, allocator, tables, translation, migration,
        PolicyConfig(window_ns=window_ns,
                     profiling_threshold_ns=threshold_ns,
                     tsp_scan_limit=scan_limit,
                     victim_granularity=victim_granularity))
    return geometry, device, allocator, layout, tables, translation, policy


def allocate_au(layout, tables, allocator, au_id, host=0, allowed=None):
    tables.allocate_au(host, au_id)
    dsns = allocator.allocate(layout.segments_per_au, allowed)
    for offset, dsn in enumerate(dsns):
        tables.map_segment(layout.pack_hsn(host, au_id, offset), dsn)
    return dsns


class TestVictimSelection:
    def test_least_accessed_rank_wins(self):
        _, device, _, _, _, _, policy = make_stack()
        for _ in range(10):
            policy.on_access(policy._dsn(0, 0, 0), now_ns=0.0)
            policy.on_access(policy._dsn(0, 1, 0), now_ns=0.0)
            policy.on_access(policy._dsn(0, 3, 0), now_ns=0.0)
        policy.end_window()
        victim = policy.start_profiling(0, now_ns=1000.0)
        assert victim == 2

    def test_needs_two_standby_ranks(self):
        _, device, _, _, _, _, policy = make_stack()
        for rank in range(1, 4):
            device.set_rank_state((0, rank), PowerState.MPSM, 0.0)
        assert policy.start_profiling(0, 0.0) is None
        assert policy.phase(0) is ChannelPhase.IDLE

    def test_mpsm_ranks_never_candidates(self):
        _, device, _, _, _, _, policy = make_stack()
        device.set_rank_state((0, 0), PowerState.MPSM, 0.0)
        policy.end_window()
        victim = policy.start_profiling(0, 0.0)
        assert victim != 0

    def test_pair_granularity_selects_aligned_block(self):
        _, device, _, _, _, _, policy = make_stack(victim_granularity=2)
        policy.end_window()
        policy.start_profiling(0, 0.0)
        assert policy.victim_ranks(0) in ((0, 1), (2, 3))


class TestMigrationTableUpdates:
    def test_case_b_plans_hot_segment_out(self):
        """Figure 8(b): an access to a victim-rank segment swaps its entry
        with a cold target entry found by the TSP."""
        _, _, _, _, _, _, policy = make_stack()
        policy.end_window()
        victim = policy.start_profiling(0, 0.0)
        hot = policy._dsn(0, victim, 3)
        policy.on_access(hot, now_ns=10.0)
        assert policy.planned_rank(hot) != victim

    def test_case_b_resets_timer(self):
        _, _, _, _, _, _, policy = make_stack()
        policy.end_window()
        victim = policy.start_profiling(0, 0.0)
        hot = policy._dsn(0, victim, 3)
        policy.on_access(hot, now_ns=12345.0)
        assert policy._channels[0].quiet_since_ns == 12345.0

    def test_case_c_restores_and_replans(self):
        """Figure 8(c): an access to an already-swapped target entry
        restores it and finds a different cold partner."""
        _, _, _, _, _, _, policy = make_stack()
        policy.end_window()
        victim = policy.start_profiling(0, 0.0)
        hot = policy._dsn(0, victim, 3)
        policy.on_access(hot, now_ns=10.0)
        partner = int(policy.planned[hot])
        # The partner turns out hot too.
        policy.on_access(partner, now_ns=20.0)
        assert policy.planned_rank(partner) != victim  # restored
        new_partner = int(policy.planned[hot])
        assert new_partner != partner  # replanned with someone else
        assert policy.planned_rank(hot) != victim

    def test_access_outside_hypothetical_victim_ignores_timer(self):
        _, _, _, _, _, _, policy = make_stack()
        policy.end_window()
        victim = policy.start_profiling(0, 0.0)
        target_rank = policy._channels[0].target_ranks[0]
        hot = policy._dsn(0, victim, 3)
        policy.on_access(hot, now_ns=10.0)
        before = policy._channels[0].quiet_since_ns
        # The hot segment is now planned out; touching it again must not
        # reset the timer.
        policy.on_access(hot, now_ns=500.0)
        assert policy._channels[0].quiet_since_ns == before

    def test_hypothetical_victim_size_constant(self):
        geometry, _, _, _, _, _, policy = make_stack()
        policy.end_window()
        victim = policy.start_profiling(0, 0.0)
        size = policy.hypothetical_victim_size(0)
        for index in range(4):
            policy.on_access(policy._dsn(0, victim, index), now_ns=10.0)
        assert policy.hypothetical_victim_size(0) == size


class TestTsp:
    def test_second_chance_clears_bits(self):
        _, _, _, _, _, _, policy = make_stack()
        policy.end_window()
        victim = policy.start_profiling(0, 0.0)
        state = policy._channels[0]
        target = state.target_ranks[state.target_cursor]
        # Mark the first three target entries hot.
        for index in range(3):
            policy.access_bits[policy._dsn(0, target, index)] = True
        partner = policy._tsp_find_cold(0, state)
        assert partner == policy._dsn(0, target, 3)
        for index in range(3):
            assert not policy.access_bits[policy._dsn(0, target, index)]

    def test_timeout_rotates_target_rank(self):
        _, _, _, _, _, _, policy = make_stack(scan_limit=4)
        policy.end_window()
        policy.start_profiling(0, 0.0)
        state = policy._channels[0]
        first_target = state.target_ranks[state.target_cursor]
        # Make every entry of the first target hot so the scan times out.
        for index in range(16):
            policy.access_bits[policy._dsn(0, first_target, index)] = True
        cursor_before = state.target_cursor
        result = policy._tsp_find_cold(0, state)
        assert result is None
        assert state.target_cursor == (cursor_before + 1) % len(
            state.target_ranks)

    def test_rotation_after_find(self):
        _, _, _, _, _, _, policy = make_stack()
        policy.end_window()
        policy.start_profiling(0, 0.0)
        state = policy._channels[0]
        before = state.target_cursor
        policy._tsp_find_cold(0, state)
        assert state.target_cursor == (before + 1) % len(state.target_ranks)

    def test_tsp_persists_across_profiling_rounds(self):
        _, _, _, _, _, _, policy = make_stack()
        policy.end_window()
        policy.start_profiling(0, 0.0)
        state = policy._channels[0]
        policy._tsp_find_cold(0, state)
        pointers = dict(state.tsp)
        policy.start_profiling(0, 1000.0)
        assert any(state.tsp[rank] == pointer
                   for rank, pointer in pointers.items() if pointer)


class TestPhaseMachine:
    def test_quiet_threshold_enters_self_refresh(self):
        _, device, _, _, _, _, policy = make_stack(threshold_ns=10.0)
        policy.end_window()
        victim = policy.start_profiling(0, now_ns=0.0)
        events = policy.tick(now_ns=20.0)
        assert any(event.kind == "enter_sr" for event in events)
        assert device.rank(0, victim).state is PowerState.SELF_REFRESH
        assert policy.phase(0) is ChannelPhase.SELF_REFRESH

    def test_activity_postpones_entry(self):
        _, device, _, _, _, _, policy = make_stack(threshold_ns=100.0)
        policy.end_window()
        victim = policy.start_profiling(0, now_ns=0.0)
        policy.on_access(policy._dsn(0, victim, 0), now_ns=90.0)
        assert policy.tick(now_ns=150.0) == []
        assert policy.tick(now_ns=200.0) != []

    def test_access_wakes_sleeping_rank(self):
        _, device, _, _, _, _, policy = make_stack(threshold_ns=10.0)
        policy.end_window()
        victim = policy.start_profiling(0, 0.0)
        policy.tick(20.0)
        penalty = policy.on_access(policy._dsn(0, victim, 5), now_ns=1000.0)
        assert penalty > 0
        assert device.rank(0, victim).state is PowerState.STANDBY
        assert policy.phase(0) is ChannelPhase.PROFILING

    def test_wake_restarts_profiling_on_woken_rank(self):
        _, device, _, _, _, _, policy = make_stack(threshold_ns=10.0)
        policy.end_window()
        victim = policy.start_profiling(0, 0.0)
        policy.tick(20.0)
        policy.end_window()
        policy.on_access(policy._dsn(0, victim, 5), now_ns=1000.0)
        # The woken rank had no accesses in the last window -> re-selected.
        assert policy.victim_rank(0) == victim

    def test_revisit_profiles_additional_victim(self):
        _, device, _, _, _, _, policy = make_stack(threshold_ns=10.0)
        policy.end_window()
        first = policy.start_profiling(0, 0.0)
        policy.tick(20.0)
        assert policy.phase(0) is ChannelPhase.SELF_REFRESH
        # After the revisit delay, a second victim is profiled while the
        # first sleeps on.
        policy.tick(20.0 + policy.revisit_delay_ns + 1.0)
        assert policy.phase(0) is ChannelPhase.PROFILING
        assert policy.victim_rank(0) != first
        assert device.rank(0, first).state is PowerState.SELF_REFRESH

    def test_pair_wakes_together(self):
        _, device, _, _, _, _, policy = make_stack(threshold_ns=10.0,
                                                   victim_granularity=2)
        policy.end_window()
        policy.start_profiling(0, 0.0)
        victims = policy.victim_ranks(0)
        policy.tick(20.0)
        for rank in victims:
            assert device.rank(0, rank).state is PowerState.SELF_REFRESH
        policy.on_access(policy._dsn(0, victims[0], 2), now_ns=1000.0)
        for rank in victims:
            assert device.rank(0, rank).state is PowerState.STANDBY


class TestMigrationPhase:
    def test_swaps_execute_with_mapping_updates(self):
        (geometry, device, allocator, layout, tables, translation,
         policy) = make_stack(threshold_ns=10.0)
        # Allocate one AU pinned to rank 0 of each channel so the victim
        # holds live data.
        allowed = {(channel, 0) for channel in range(2)}
        dsns = allocate_au(layout, tables, allocator, 0, allowed=allowed)
        policy.end_window()
        policy._channels[0].last_window_counts = {0: 0, 1: 5, 2: 5, 3: 5}
        victim = policy.start_profiling(0, 0.0)
        assert victim == 0
        hot = next(dsn for dsn in dsns
                   if policy._channel_of(dsn) == 0)
        hsn_before = tables.hsn_of_dsn(hot)
        policy.on_access(hot, now_ns=5.0)
        events = policy.tick(now_ns=30.0)
        assert events and events[0].swaps >= 1
        # The hot segment physically moved out of the victim rank and the
        # mapping followed it.
        new_dsn = tables.walk(hsn_before).dsn
        assert policy._rank_of(new_dsn) != victim
        assert not allocator.is_allocated(hot)

    def test_migrated_bytes_accounted(self):
        (geometry, device, allocator, layout, tables, translation,
         policy) = make_stack(threshold_ns=10.0)
        allowed = {(channel, 0) for channel in range(2)}
        dsns = allocate_au(layout, tables, allocator, 0, allowed=allowed)
        policy.end_window()
        policy._channels[0].last_window_counts = {0: 0, 1: 5, 2: 5, 3: 5}
        policy.start_profiling(0, 0.0)
        hot = next(dsn for dsn in dsns if policy._channel_of(dsn) == 0)
        policy.on_access(hot, now_ns=5.0)
        policy.tick(now_ns=30.0)
        assert policy.migrated_bytes_total >= geometry.segment_bytes

    def test_table_reset_after_migration(self):
        _, _, _, _, _, _, policy = make_stack(threshold_ns=10.0)
        policy.end_window()
        victim = policy.start_profiling(0, 0.0)
        policy.on_access(policy._dsn(0, victim, 1), now_ns=5.0)
        policy.tick(now_ns=30.0)
        geo = policy.geometry
        for rank in range(geo.ranks_per_channel):
            dsn = policy._dsn(0, rank, 0)
            assert int(policy.planned[dsn]) == dsn


class TestBatchEquivalence:
    def test_batch_matches_per_access(self):
        """on_batch applies the same updates as repeated on_access."""
        _, _, _, _, _, _, policy_a = make_stack()
        _, _, _, _, _, _, policy_b = make_stack()
        for policy in (policy_a, policy_b):
            policy.end_window()
            policy.start_profiling(0, 0.0)
            policy.start_profiling(1, 0.0)
        dsns = [policy_a._dsn(0, 1, 5), policy_a._dsn(0, 2, 9),
                policy_a._dsn(1, 0, 3)]
        for dsn in dsns:
            policy_a.on_access(dsn, now_ns=10.0)
        policy_b.on_batch(np.array(dsns), now_ns=10.0)
        assert np.array_equal(policy_a.planned, policy_b.planned)
        assert np.array_equal(policy_a.access_bits, policy_b.access_bits)

    def test_batch_empty_is_noop(self):
        _, _, _, _, _, _, policy = make_stack()
        assert policy.on_batch(np.array([], dtype=np.int64), 0.0) == 0.0

    def test_batch_bit_subsample(self):
        _, _, _, _, _, _, policy = make_stack()
        dsns = np.array([policy._dsn(0, 0, index) for index in range(4)])
        policy.on_batch(dsns, 0.0, bit_dsns=dsns[:2])
        assert policy.access_bits[dsns[0]] and policy.access_bits[dsns[1]]
        assert not policy.access_bits[dsns[2]]
