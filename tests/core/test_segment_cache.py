"""Tests for the two-level segment mapping cache."""

import pytest
from hypothesis import given, strategies as st

from repro.core.segment_cache import (CacheStats, FullyAssociativeCache,
                                      SegmentCacheConfig, SegmentMappingCache,
                                      SetAssociativeCache, cycles_to_ns)
from repro.errors import ConfigurationError


class TestCycleConversion:
    def test_one_cycle_at_1p5ghz(self):
        assert cycles_to_ns(1) == pytest.approx(1 / 1.5)

    def test_seven_cycles(self):
        assert cycles_to_ns(7) == pytest.approx(7 / 1.5)


class TestCacheStats:
    def test_ratios(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.hit_ratio == pytest.approx(0.75)
        assert stats.miss_ratio == pytest.approx(0.25)

    def test_empty(self):
        assert CacheStats().hit_ratio == 0.0


class TestFullyAssociative:
    def test_hit_after_insert(self):
        cache = FullyAssociativeCache(4)
        cache.insert(10, 100)
        assert cache.lookup(10) == 100
        assert cache.stats.hits == 1

    def test_miss(self):
        cache = FullyAssociativeCache(4)
        assert cache.lookup(10) is None
        assert cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = FullyAssociativeCache(2)
        cache.insert(1, 11)
        cache.insert(2, 22)
        cache.lookup(1)  # make 2 the LRU entry
        evicted = cache.insert(3, 33)
        assert evicted == (2, 22)
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_reinsert_updates_value(self):
        cache = FullyAssociativeCache(2)
        cache.insert(1, 11)
        cache.insert(1, 99)
        assert cache.lookup(1) == 99
        assert len(cache) == 1

    def test_invalidate(self):
        cache = FullyAssociativeCache(2)
        cache.insert(1, 11)
        assert cache.invalidate(1)
        assert not cache.invalidate(1)
        assert cache.stats.invalidations == 1

    def test_zero_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            FullyAssociativeCache(0)


class TestSetAssociative:
    def test_set_isolation(self):
        cache = SetAssociativeCache(entries=8, ways=2)  # 4 sets
        # Keys 0, 4, 8, 12 all map to set 0; two ways force eviction.
        cache.insert(0, 1)
        cache.insert(4, 2)
        cache.insert(8, 3)
        assert 0 not in cache  # LRU of set 0
        assert 4 in cache and 8 in cache

    def test_other_sets_unaffected(self):
        cache = SetAssociativeCache(entries=8, ways=2)
        cache.insert(1, 10)
        cache.insert(0, 1)
        cache.insert(4, 2)
        cache.insert(8, 3)
        assert cache.lookup(1) == 10

    def test_ways_must_divide(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(entries=10, ways=4)

    def test_len_counts_all_sets(self):
        cache = SetAssociativeCache(entries=8, ways=2)
        cache.insert(0, 1)
        cache.insert(1, 2)
        assert len(cache) == 2


class TestSegmentCacheConfig:
    def test_table3_defaults(self):
        config = SegmentCacheConfig()
        assert config.l1_entries == 64
        assert config.l2_entries == 1024
        assert config.l2_ways == 4

    def test_latencies(self):
        config = SegmentCacheConfig()
        assert config.l1_hit_ns == pytest.approx(1 / 1.5)
        assert config.l2_hit_ns == pytest.approx(7 / 1.5)


class TestTwoLevel:
    @pytest.fixture
    def smc(self):
        return SegmentMappingCache(SegmentCacheConfig(l1_entries=2,
                                                      l2_entries=8,
                                                      l2_ways=2))

    def test_fill_populates_both_levels(self, smc):
        smc.fill(5, 50)
        assert 5 in smc.l1 and 5 in smc.l2

    def test_l2_hit_promotes_to_l1(self, smc):
        smc.fill(1, 10)
        smc.fill(2, 20)
        smc.fill(3, 30)  # 1 evicted from tiny L1, still in L2
        assert 1 not in smc.l1
        result = smc.lookup(1)
        assert result.l2_hit and not result.l1_hit
        assert 1 in smc.l1

    def test_full_miss(self, smc):
        result = smc.lookup(99)
        assert result.full_miss
        assert result.dsn is None

    def test_invalidate_both_levels(self, smc):
        smc.fill(7, 70)
        assert smc.invalidate(7)
        assert 7 not in smc.l1 and 7 not in smc.l2
        assert not smc.invalidate(7)

    def test_hit_latency_composition(self, smc):
        smc.fill(1, 10)
        l1 = smc.lookup(1)
        assert smc.hit_latency_ns(l1) == pytest.approx(smc.config.l1_hit_ns)
        smc.fill(2, 20)
        smc.fill(3, 30)
        l2 = smc.lookup(1) if 1 not in smc.l1 else smc.lookup(99)
        assert smc.hit_latency_ns(l2) == pytest.approx(
            smc.config.l1_hit_ns + smc.config.l2_hit_ns)

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=200))
    def test_lookup_after_fill_always_hits(self, keys):
        """An immediately repeated lookup never misses (LRU keeps MRU)."""
        smc = SegmentMappingCache(SegmentCacheConfig(l1_entries=4,
                                                     l2_entries=16,
                                                     l2_ways=4))
        for key in keys:
            smc.fill(key, key * 10)
            result = smc.lookup(key)
            assert result.dsn == key * 10
            assert result.l1_hit
