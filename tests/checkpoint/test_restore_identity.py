"""Restore-at-step-k bit-identity, for every registered experiment.

The contract (docs/CHECKPOINT.md): a run restored from a checkpoint
taken at step *k* produces results identical to the uninterrupted run —
same records, same telemetry totals, same checker audits.  Identity is
checked by value (``==`` plus :func:`~repro.exec.hashing.stable_hash`,
which treats floats bit-exactly); raw pickle bytes of whole records are
deliberately NOT compared, because pickle's memoisation encodes object
aliasing that can differ between two value-identical graphs.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import checkpoint_state, resume_state, run_to_step
from repro.exec.hashing import stable_hash
from repro.sim.experiments import EXPERIMENTS
from repro.sim.stepping import make_stepper, stepper_names

#: Record keys that legitimately differ between two runs of the same
#: config (host memory readings); everything else must match exactly.
_NONDETERMINISTIC_KEYS = {"peak_rss_mb", "within_ceiling"}


def comparable(result) -> dict:
    record = result.to_record()
    metrics = {key: value for key, value in record.metrics.items()
               if key not in _NONDETERMINISTIC_KEYS}
    return {"experiment": record.experiment, "metrics": metrics}


def assert_identical(cold, resumed) -> None:
    a, b = comparable(cold), comparable(resumed)
    assert a == b
    assert stable_hash(a) == stable_hash(b)


#: Cold-run results, one per experiment (the uninterrupted reference is
#: deterministic, so the hypothesis examples can share it).
_COLD: dict[str, object] = {}


def cold_run(name: str):
    if name not in _COLD:
        _COLD[name] = make_stepper(name, EXPERIMENTS[name].tiny_config()).run()
    return _COLD[name]


def restore_at_k(name: str, k: int):
    """Cold run vs run interrupted at step k and resumed from a snapshot."""
    config = EXPERIMENTS[name].tiny_config()
    cold = cold_run(name)

    prefix = make_stepper(name, config)
    state, taken, _more = run_to_step(prefix, k)
    checkpoint = checkpoint_state(prefix, state, taken)

    resumer = make_stepper(name, config)
    resumed_state = resume_state(resumer, checkpoint)
    while resumer.advance(resumed_state):
        pass
    return cold, resumer.finish(resumed_state)


def test_every_experiment_implements_stepping():
    assert stepper_names() == sorted(EXPERIMENTS)


def test_restore_at_step_2_all_experiments():
    for name in sorted(EXPERIMENTS):
        cold, resumed = restore_at_k(name, 2)
        assert_identical(cold, resumed)


def test_restore_at_step_1_unit_experiments():
    # Step 1 is the hairiest point for the leg-structured experiments
    # (powerdown_comparison's baseline leg, fleet-soak's serial leg,
    # chaos level 0): the checkpoint lands exactly between phases.
    for name in ("powerdown_comparison", "fleet-soak", "chaos",
                 "ramzzz_comparison"):
        cold, resumed = restore_at_k(name, 1)
        assert_identical(cold, resumed)


@settings(max_examples=4, deadline=None)
@given(k=st.integers(min_value=1, max_value=39))
def test_restore_at_any_step_selfrefresh(k):
    cold, resumed = restore_at_k("selfrefresh", k)
    assert_identical(cold, resumed)


def test_restore_past_the_end_is_safe():
    # A checkpoint taken at (or after) the final step resumes to the
    # same result: advance() is a no-op returning False once complete.
    cold, resumed = restore_at_k("rank_sweep", 10_000)
    assert_identical(cold, resumed)
