"""Injector hook behaviour, datapath wiring, and lazy telemetry."""

import pytest

from repro.core.config import DtlConfig
from repro.core.controller import DtlController
from repro.cxl.link import CxlLinkConfig
from repro.dram.geometry import DramGeometry
from repro.faults.hooks import HookPoint
from repro.faults.injector import FaultInjector
from repro.faults.plan import (CxlLinkFault, EccFault, FaultPlan,
                               MigrationAbortFault, PowerExitFault,
                               SmcCorruptionFault)
from repro.telemetry import MetricsRegistry
from repro.units import MIB


def make_controller() -> DtlController:
    return DtlController(DtlConfig(
        geometry=DramGeometry(channels=2, ranks_per_channel=2,
                              rank_bytes=4 * MIB, segment_bytes=128 * 1024),
        au_bytes=1 * MIB))


def make_injector(*specs, controller=None) -> FaultInjector:
    plan = FaultPlan(specs=tuple(specs))
    if controller is None:
        return FaultInjector(plan)
    return FaultInjector(plan, registry=controller.metrics,
                         trace=controller.trace)


class TestCxlHook:
    def test_error_charges_replay_latency(self):
        link = CxlLinkConfig()
        injector = FaultInjector(
            FaultPlan(specs=(CxlLinkFault(retries=2, backoff_ns=40.0),)),
            link=link)
        extra = injector.on_cxl_access()
        assert extra == pytest.approx(link.replay_latency_ns(2, 40.0))
        assert injector.cxl_retry_counts == {2: 1}
        assert injector.recovered == 1

    def test_stall_charges_fixed_latency(self):
        injector = make_injector(CxlLinkFault(kind="stall", stall_ns=400.0))
        assert injector.on_cxl_access() == pytest.approx(400.0)
        assert injector.cxl_retry_counts == {}

    def test_period_schedules_fires(self):
        injector = make_injector(CxlLinkFault(start=1, period=3))
        fired = [injector.on_cxl_access() > 0 for _ in range(7)]
        assert fired == [False, True, False, False, True, False, False]
        assert injector.visits(HookPoint.CXL_ACCESS) == 7
        assert injector.injected(HookPoint.CXL_ACCESS) == 2

    def test_armed_controller_inflates_latency(self):
        controller = make_controller()
        vm = controller.allocate_vm(0, 1 * MIB)
        hpa = controller.hpa_of(vm.au_ids[0], 0)
        controller.access(0, hpa)  # warm the SMC so latencies are steady
        baseline = controller.access(0, hpa).latency_ns
        injector = make_injector(CxlLinkFault(kind="stall", stall_ns=500.0),
                                 controller=controller)
        controller.arm_faults(injector)
        assert controller.access(0, hpa).latency_ns \
            == pytest.approx(baseline + 500.0)
        controller.disarm_faults()
        assert controller.access(0, hpa).latency_ns == pytest.approx(baseline)


class TestSmcHook:
    def test_corruption_invalidates_cached_entry(self):
        controller = make_controller()
        vm = controller.allocate_vm(0, 1 * MIB)
        hpa = controller.hpa_of(vm.au_ids[0], 0)
        controller.access(0, hpa)
        assert controller.access(0, hpa).smc_l1_hit  # warmed
        # Fire the corruption on the next lookup: the entry is dropped,
        # so the access *after* it misses and re-walks the tables.
        controller.arm_faults(make_injector(SmcCorruptionFault(max_fires=1),
                                            controller=controller))
        controller.access(0, hpa)
        result = controller.access(0, hpa)
        assert not result.smc_l1_hit
        assert result.dsn == controller.tables.try_walk(
            controller.host_layout.pack_hsn(0, vm.au_ids[0], 0))


class TestDramHook:
    def test_ecc_errors_accounted_per_rank(self):
        controller = make_controller()
        vm = controller.allocate_vm(0, 2 * MIB)
        injector = make_injector(EccFault(bits=1, period=2),
                                 EccFault(bits=2, start=1, period=100),
                                 controller=controller)
        controller.arm_faults(injector)
        for offset in range(8):
            controller.access(0, controller.hpa_of(vm.au_ids[0], offset))
        assert injector.ecc_corrected == 4
        assert injector.ecc_uncorrected == 1
        counters = controller.metrics.counter_values()
        assert counters["dram.ecc.errors"] == 5
        assert counters["dram.ecc.corrected"] == 4
        assert counters["dram.ecc.uncorrected"] == 1

    def test_rank_filter_restricts_injection(self):
        injector = make_injector(EccFault(channel=0, rank=1))

        class _Device:
            calls = []

            def record_ecc_error(self, rank_id, bits=1, now_s=0.0):
                self.calls.append(rank_id)
                return True

        device = _Device()
        injector.on_dram_access(0, 0, device)
        injector.on_dram_access(1, 1, device)
        injector.on_dram_access(0, 1, device)
        assert device.calls == [(0, 1)]


class TestMigrationHook:
    def test_abort_fires_at_chosen_progress(self):
        controller = make_controller()
        vm = controller.allocate_vm(0, 1 * MIB)
        hsn = controller.host_layout.pack_hsn(0, vm.au_ids[0], 0)
        old_dsn = controller.tables.try_walk(hsn)
        channel = controller.migration.channel_of(old_dsn)
        rank = controller.allocator.rank_of_dsn(old_dsn)
        new_dsn = controller.allocator.allocate_in_rank(rank, 1)[0]
        injector = make_injector(
            MigrationAbortFault(at_lines_done=3, max_fires=1),
            controller=controller)
        controller.arm_faults(injector)
        request = controller.migration.submit(hsn, old_dsn, new_dsn)
        controller.migration.step_channel(channel, lines=1)  # 0 -> 1
        controller.migration.step_channel(channel, lines=2)  # 1 -> 3
        assert request.lines_done == 3
        controller.migration.step_channel(channel, lines=1)  # abort fires
        assert request.lines_done == 0
        assert request.retries == 1
        assert injector.injected(HookPoint.MIGRATION_COPY) == 1
        # Drained to completion despite the abort (fire cap reached).
        controller.migration.drain()
        assert controller.tables.try_walk(hsn) == new_dsn

    def test_completion_bit_refuses_abort(self):
        injector = make_injector(MigrationAbortFault())

        class _Done:
            completion = True
            lines_done = 8

        assert injector.on_migration_copy(_Done(), channel=0) is False
        assert injector.data_loss_events == 1


class TestPowerExitHook:
    def test_delay_and_fail_targets(self):
        injector = make_injector(
            PowerExitFault(target="mpsm", kind="delay", delay_ns=700.0),
            PowerExitFault(target="sr", kind="fail", delay_ns=100.0,
                           failures=3))
        assert injector.on_power_exit("mpsm") == pytest.approx(700.0)
        assert injector.on_power_exit("sr") == pytest.approx(300.0)
        assert injector.power_exit_failures == 3
        assert injector.visits(HookPoint.MPSM_EXIT) == 1
        assert injector.visits(HookPoint.SR_EXIT) == 1


class TestLazyTelemetry:
    def test_silent_injector_registers_nothing(self):
        registry = MetricsRegistry()
        injector = FaultInjector(
            FaultPlan(specs=(CxlLinkFault(start=1000),)), registry=registry)
        injector.on_cxl_access()
        assert "faults.injected" not in registry.counter_values()

    def test_first_fire_creates_metrics(self):
        registry = MetricsRegistry()
        injector = FaultInjector(FaultPlan(specs=(CxlLinkFault(),)),
                                 registry=registry)
        injector.on_cxl_access()
        counters = registry.counter_values()
        assert counters["faults.injected"] == 1
        assert counters["faults.injected.cxl.access"] == 1


class TestReport:
    def test_report_only_lists_touched_hooks(self):
        injector = make_injector(CxlLinkFault())
        injector.on_cxl_access()
        report = injector.report()
        assert report.injected == {"cxl.access": 1}
        assert report.hook_visits == {"cxl.access": 1}
        assert not report.empty
        assert report.to_dict()["injected_total"] == 1

    def test_combine_sums_levels(self):
        from repro.faults.injector import ReliabilityReport
        first = ReliabilityReport(injected={"cxl.access": 2},
                                  cxl_retry_counts={2: 2}, detected=2,
                                  recovered=2, checker_audits=3)
        second = ReliabilityReport(injected={"cxl.access": 1,
                                             "sr.exit": 1},
                                   cxl_retry_counts={2: 1}, detected=2,
                                   recovered=1, checker_audits=4,
                                   checker_violations=["boom"])
        total = ReliabilityReport.combine([first, second])
        assert total.injected == {"cxl.access": 3, "sr.exit": 1}
        assert total.cxl_retry_counts == {2: 3}
        assert total.detected == 4
        assert total.recovered == 3
        assert total.checker_audits == 7
        assert total.checker_violations == ["boom"]
