"""CXL controller power and area estimation (Sections 6.5-6.6, Table 6).

The paper synthesises a quad-core ARM Cortex-R5 + SRAM controller at TSMC
40 nm (0.8 W, 5.4 mm^2 at 1.5 GHz) and normalises to 7 nm assuming both
power and area scale with ``(technology)^2`` (Biswas & Chandrakasan),
yielding 25.7 mW / 0.165 mm^2 for the 384 GB device and 36.2 mW /
1.1 mm^2 for the 4 TB device (larger SRAM structures).

SRAM power and area scale sub-linearly with capacity (CACTI-style); the
model uses a configurable exponent calibrated to the paper's two points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import KIB, MIB

#: 40 nm synthesis results (Section 6.5).
BASE_TECH_NM = 40.0
TARGET_TECH_NM = 7.0
BASE_TOTAL_POWER_W = 0.8
BASE_TOTAL_AREA_MM2 = 5.4

#: Table 6 reference (7 nm, 384 GB device).
PAPER_TABLE6_384GB = {"smc_mw": 1.7, "sram_mw": 2.9, "cpu_mw": 21.2,
                      "total_mw": 25.7, "total_mm2": 0.165}
PAPER_TABLE6_4TB = {"smc_mw": 2.1, "sram_mw": 13.0, "cpu_mw": 21.2,
                    "total_mw": 36.2, "total_mm2": 1.1}


def technology_scale(base_nm: float = BASE_TECH_NM,
                     target_nm: float = TARGET_TECH_NM) -> float:
    """Power/area scaling factor between process nodes, ``(t/b)^2``."""
    return (target_nm / base_nm) ** 2


@dataclass(frozen=True)
class ControllerModel:
    """Component-level power/area model of the DTL CXL controller.

    The 384 GB device is the calibration point; other capacities scale the
    SRAM component by ``(sram_bytes / base_sram_bytes) ** sram_exponent``.

    Attributes:
        sram_bytes: On-chip SRAM for the DTL structures (Table 5 total).
        smc_bytes: Segment mapping cache capacity.
        technology_nm: Target process node.
        sram_exponent: Sub-linear SRAM scaling exponent (calibrated to
            Table 6's 0.5 MB -> 5.3 MB giving 2.9 mW -> 13.0 mW).
    """

    sram_bytes: int = 500 * KIB
    smc_bytes: int = 5 * KIB + 328
    technology_nm: float = TARGET_TECH_NM
    sram_exponent: float = 0.635
    base_sram_bytes: int = 500 * KIB
    base_smc_bytes: int = 5 * KIB + 328
    cpu_power_mw_7nm: float = 21.2
    cpu_area_mm2_7nm: float = 0.0515
    base_sram_power_mw_7nm: float = 2.9
    base_sram_area_mm2_7nm: float = 0.1
    base_smc_power_mw_7nm: float = 1.7
    base_smc_area_mm2_7nm: float = 0.0035

    def _tech_factor(self) -> float:
        return technology_scale(TARGET_TECH_NM, self.technology_nm)

    def _sram_scale(self) -> float:
        return (self.sram_bytes / self.base_sram_bytes) ** self.sram_exponent

    def _smc_scale(self) -> float:
        return (self.smc_bytes / self.base_smc_bytes) ** self.sram_exponent

    # -- power ----------------------------------------------------------------

    def smc_power_mw(self) -> float:
        """Segment mapping cache power."""
        return self.base_smc_power_mw_7nm * self._smc_scale() \
            * self._tech_factor()

    def sram_power_mw(self) -> float:
        """DTL SRAM structure power."""
        return self.base_sram_power_mw_7nm * self._sram_scale() \
            * self._tech_factor()

    def cpu_power_mw(self) -> float:
        """Quad Cortex-R5 power (capacity independent)."""
        return self.cpu_power_mw_7nm * self._tech_factor()

    def total_power_mw(self) -> float:
        """Table 6's total power row."""
        return self.smc_power_mw() + self.sram_power_mw() + self.cpu_power_mw()

    # -- area ------------------------------------------------------------------

    def smc_area_mm2(self) -> float:
        """Segment mapping cache area."""
        return self.base_smc_area_mm2_7nm * self._smc_scale() \
            * self._tech_factor()

    def sram_area_mm2(self) -> float:
        """DTL SRAM structure area (scales ~linearly with capacity)."""
        return self.base_sram_area_mm2_7nm \
            * (self.sram_bytes / self.base_sram_bytes) * self._tech_factor()

    def cpu_area_mm2(self) -> float:
        """Microprocessor area."""
        return self.cpu_area_mm2_7nm * self._tech_factor()

    def total_area_mm2(self) -> float:
        """Table 6's total area row."""
        return self.smc_area_mm2() + self.sram_area_mm2() + self.cpu_area_mm2()

    def report(self) -> dict[str, float]:
        """All Table 6 cells."""
        return {
            "smc_mw": self.smc_power_mw(),
            "sram_mw": self.sram_power_mw(),
            "cpu_mw": self.cpu_power_mw(),
            "total_mw": self.total_power_mw(),
            "smc_mm2": self.smc_area_mm2(),
            "sram_mm2": self.sram_area_mm2(),
            "cpu_mm2": self.cpu_area_mm2(),
            "total_mm2": self.total_area_mm2(),
        }


#: Table 6's two configurations.
CONTROLLER_384GB = ControllerModel()
CONTROLLER_4TB = ControllerModel(sram_bytes=int(5.3 * MIB),
                                 smc_bytes=int(5.9 * KIB) + 752)


def sanity_check_40nm_scaling() -> tuple[float, float]:
    """Scale the full 40 nm synthesis to 7 nm (Section 6.5 cross-check).

    Returns:
        ``(power_mw, area_mm2)`` — should approximate Table 6's 384 GB
        totals (25.7 mW, 0.165 mm^2).
    """
    factor = technology_scale()
    return BASE_TOTAL_POWER_W * 1000.0 * factor, BASE_TOTAL_AREA_MM2 * factor


__all__ = [
    "BASE_TECH_NM",
    "TARGET_TECH_NM",
    "BASE_TOTAL_POWER_W",
    "BASE_TOTAL_AREA_MM2",
    "PAPER_TABLE6_384GB",
    "PAPER_TABLE6_4TB",
    "technology_scale",
    "ControllerModel",
    "CONTROLLER_384GB",
    "CONTROLLER_4TB",
    "sanity_check_40nm_scaling",
]
