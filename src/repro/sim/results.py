"""Result records: serialisation and table rendering for experiments.

The simulators return rich dataclasses; this module flattens them into
plain dictionaries for JSON output and renders aligned text/markdown
tables for reports and the CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.sim.powerdown_sim import PowerDownResult
from repro.sim.selfrefresh_sim import SelfRefreshResult


@dataclass
class ExperimentRecord:
    """One experiment's identity plus its flattened metrics."""

    experiment: str
    metrics: dict[str, Any] = field(default_factory=dict)
    paper: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {"experiment": self.experiment, "metrics": self.metrics,
                "paper": self.paper}


def flatten_powerdown(result: PowerDownResult) -> dict[str, Any]:
    """Flatten a power-down simulation result into plain metrics."""
    return {
        "mean_active_ranks_per_channel": result.mean_active_ranks,
        "execution_time_factor": result.execution_time_factor,
        "background_energy_rsu_s": result.energy.background_j,
        "active_energy_rsu_s": result.energy.active_j,
        "migration_energy_rsu_s": result.energy.migration_j,
        "total_energy_rsu_s": result.total_energy,
        "migrated_bytes": result.migrated_bytes,
        "migration_time_s": result.migration_time_s,
        "power_transitions": result.power_transitions,
        "intervals": len(result.intervals),
        "smc_l1_hit_ratio": result.telemetry.get("gauges", {}).get(
            "smc.l1.hit_ratio"),
        "segments_migrated": result.telemetry.get("counters", {}).get(
            "migration.segments_migrated"),
    }


def flatten_telemetry(telemetry: dict[str, Any],
                      prefix: str = "") -> dict[str, Any]:
    """Flatten a telemetry snapshot dict into plain scalar metrics.

    Takes the output of ``Snapshot.to_dict()`` (or the ``telemetry``
    field of a :class:`PowerDownResult`) and merges its counters and
    gauges into one flat namespace; histograms contribute their count
    and mean, events get an ``event.`` prefix.
    """
    flat: dict[str, Any] = {}
    for name, value in telemetry.get("counters", {}).items():
        flat[f"{prefix}{name}"] = value
    for name, value in telemetry.get("gauges", {}).items():
        flat[f"{prefix}{name}"] = value
    for name, hist in telemetry.get("histograms", {}).items():
        flat[f"{prefix}{name}.count"] = hist.get("count", 0)
        flat[f"{prefix}{name}.mean"] = hist.get("mean", 0.0)
    for kind, count in telemetry.get("events", {}).items():
        flat[f"{prefix}event.{kind}"] = count
    return flat


def flatten_selfrefresh(result: SelfRefreshResult) -> dict[str, Any]:
    """Flatten a self-refresh simulation result into plain metrics."""
    return {
        "active_ranks_per_channel": result.active_ranks_per_channel,
        "stable_savings": result.stable_savings,
        "mean_savings": result.mean_savings,
        "warmup_s": (None if result.warmup_s == float("inf")
                     else result.warmup_s),
        "ever_stable": result.ever_stable,
        "sr_entries": result.sr_entries,
        "sr_exits": result.sr_exits,
        "migrated_bytes": result.migrated_bytes,
        "baseline_power_rsu": result.baseline_power,
        "exit_penalty_ns": result.exit_penalty_ns,
    }


def flatten_tournament(result) -> dict[str, Any]:
    """Flatten a policy-tournament result into plain metrics.

    One ``<policy>.<workload>.*`` triple per cell plus per-policy means
    and the Pareto front (annotated directly in
    :class:`~repro.sim.tournament.TournamentResult`, not re-derived).
    """
    flat: dict[str, Any] = {
        "policies": list(result.config.policies),
        "cells": len(result.cells),
        "pareto": [(cell.policy, cell.workload)
                   for cell in result.pareto_front()],
    }
    for cell in result.cells:
        prefix = f"{cell.policy}.{cell.workload}"
        flat[f"{prefix}.savings"] = cell.savings
        flat[f"{prefix}.overhead"] = cell.overhead
        flat[f"{prefix}.sr_entries"] = cell.sr_entries
        flat[f"{prefix}.migrated_bytes"] = cell.migrated_bytes
    for policy, means in result.policy_means().items():
        flat[f"{policy}.mean_savings"] = means[0]
        flat[f"{policy}.mean_overhead"] = means[1]
    return flat


def save_records(records: list[ExperimentRecord], path: str | Path) -> Path:
    """Write experiment records as a JSON document; returns the path."""
    path = Path(path)
    path.write_text(json.dumps([record.to_dict() for record in records],
                               indent=2, sort_keys=True))
    return path


def load_records(path: str | Path) -> list[ExperimentRecord]:
    """Read experiment records back from :func:`save_records` output."""
    raw = json.loads(Path(path).read_text())
    return [ExperimentRecord(experiment=item["experiment"],
                             metrics=item.get("metrics", {}),
                             paper=item.get("paper", {}))
            for item in raw]


def render_table(rows: list[tuple], header: tuple = (),
                 markdown: bool = False) -> str:
    """Render rows as an aligned text table (or a markdown table)."""
    cells = [tuple(str(cell) for cell in row) for row in rows]
    if header:
        cells.insert(0, tuple(str(cell) for cell in header))
    if not cells:
        return ""
    columns = max(len(row) for row in cells)
    cells = [row + ("",) * (columns - len(row)) for row in cells]
    widths = [max(len(row[index]) for row in cells)
              for index in range(columns)]
    lines = []
    for position, row in enumerate(cells):
        if markdown:
            line = "| " + " | ".join(
                cell.ljust(width) for cell, width in zip(row, widths)) + " |"
        else:
            line = "  ".join(cell.rjust(width)
                             for cell, width in zip(row, widths))
        lines.append(line)
        if markdown and header and position == 0:
            lines.append("|" + "|".join("-" * (width + 2)
                                        for width in widths) + "|")
    return "\n".join(lines)


__all__ = [
    "ExperimentRecord",
    "flatten_powerdown",
    "flatten_selfrefresh",
    "flatten_telemetry",
    "flatten_tournament",
    "save_records",
    "load_records",
    "render_table",
]
