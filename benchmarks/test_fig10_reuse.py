"""Figure 10: segment size vs cold-segment fraction.

Paper: with reuse distances above 10 M memory instructions counting as
cold, 61.5 % of segments are cold at 2 MB remapping granularity but only
33.2 % at 4 MB — which is why the DTL picks 2 MB segments.
"""

import numpy as np

from repro.units import GIB
from repro.workloads.cloudsuite import (PROFILES, SEGMENT_BYTES,
                                        TRACED_BENCHMARKS, TraceGenerator)

from conftest import report

PAPER_COLD_2MB = 0.615
PAPER_COLD_4MB = 0.332
FOOTPRINT = 2 * GIB
TARGET_INSTRUCTIONS = 150e6


def measure():
    fractions_2mb, fractions_4mb, rows = [], [], []
    for index, name in enumerate(TRACED_BENCHMARKS):
        generator = TraceGenerator(PROFILES[name], footprint_bytes=FOOTPRINT,
                                   seed=index)
        accesses = int(TARGET_INSTRUCTIONS * PROFILES[name].mapki / 1000)
        trace = generator.generate(accesses)
        cold_2mb = trace.cold_segment_fraction(
            SEGMENT_BYTES, total_segments=generator.num_segments)
        cold_4mb = trace.cold_segment_fraction(
            2 * SEGMENT_BYTES, total_segments=generator.num_segments // 2)
        fractions_2mb.append(cold_2mb)
        fractions_4mb.append(cold_4mb)
        rows.append((name, f"{cold_2mb:.1%}", f"{cold_4mb:.1%}"))
    return fractions_2mb, fractions_4mb, rows


def test_fig10_cold_fraction_by_granularity(benchmark):
    cold_2mb, cold_4mb, rows = benchmark.pedantic(measure, rounds=1,
                                                  iterations=1)
    mean_2mb = float(np.mean(cold_2mb))
    mean_4mb = float(np.mean(cold_4mb))
    rows.append(("mean", f"{mean_2mb:.1%} (paper 61.5%)",
                 f"{mean_4mb:.1%} (paper 33.2%)"))
    report("Figure 10: cold segments by remapping granularity", rows,
           header=("workload", "cold @2MB", "cold @4MB"))
    # Shape: 2 MB granularity preserves roughly twice the cold fraction.
    assert 0.50 < mean_2mb < 0.75
    assert 0.20 < mean_4mb < 0.50
    assert mean_2mb > 1.4 * mean_4mb


def test_fig10_every_workload_loses_cold_at_4mb():
    cold_2mb, cold_4mb, _ = measure()
    for two, four in zip(cold_2mb, cold_4mb):
        assert four < two
