"""Fleet-level study: many pool nodes, racks, one datacenter.

Scales the Figure 12 experiment out: a fleet of memory-pool nodes each
runs its own Azure-like VM schedule through a DTL device, and the
per-node DRAM savings aggregate into the datacenter-level power/TCO
numbers the paper's introduction motivates (DRAM ~38 % of server power,
savings -> TCO).

Node heterogeneity comes from independent trace seeds: some nodes run
hot (little to power down), others sit half-empty — the fleet mean is
what a capacity planner sees.

The fan-out is **sharded with streaming aggregation**: nodes are cut
into contiguous shards (:mod:`repro.exec.sharding`), each shard runs
inside one worker invocation, and the worker reduces its nodes' full
:class:`~repro.sim.powerdown_sim.PowerDownComparisonResult` payloads to
compact :class:`NodeSummary` objects before anything crosses the process
boundary.  The parent folds each :class:`ShardAggregate` as it streams
in (submission order) and releases it, so no process ever materialises
the whole fleet's records — which is what lets a 10k-node soak run
under a fixed memory ceiling.

Determinism: nodes inside a shard run in index order and shards stream
in index order, so every float fold (energies, counter sums) sees the
exact same operand sequence regardless of shard size or worker count —
``fleet_savings``, ``telemetry_totals()``, and ``to_record()`` are
bit-identical between serial, sharded-serial, and sharded-parallel
execution.

:class:`RackConfig` layers rack structure on top: consecutive nodes
share one pooled-memory fabric, and each rack's aggregate bandwidth
demand (from the shard summaries) runs through the M/D/1 contention
model in :mod:`repro.cxl.pool`, feeding a contended execution stretch
back into the rack-level energy numbers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.tco import TcoModel
from repro.cxl.pool import (PoolContention, PoolContentionConfig, PoolStats,
                            pool_contention)
from repro.exec import (ExecConfig, TaskOutcome, run_shard, run_tasks,
                        shard_slices, shard_tasks)
from repro.host.scheduler import SchedulerConfig
from repro.sim.powerdown_sim import (ComparisonSimulator,
                                     PowerDownComparisonResult,
                                     PowerDownSimConfig)
from repro.telemetry import MetricsRegistry
from repro.workloads.azure import AzureTraceConfig


@dataclass(frozen=True)
class FleetConfig:
    """A fleet of identical pool nodes with independent schedules.

    Attributes:
        num_nodes: Pool nodes simulated (each gets its own VM trace).
        node: Per-node simulation configuration template.
        base_seed: Node ``i`` uses seed ``base_seed + i``.
        tco: Cost model for the datacenter roll-up.
        shard_size: Nodes executed per worker invocation.  1 reproduces
            the old node-per-task fan-out (minus the payload shipping);
            larger shards amortise process dispatch over more nodes.
    """

    num_nodes: int = 8
    node: PowerDownSimConfig = field(default_factory=PowerDownSimConfig)
    base_seed: int = 0
    tco: TcoModel = field(default_factory=TcoModel)
    shard_size: int = 4


@dataclass(frozen=True)
class RackConfig(FleetConfig):
    """A fleet organised into racks sharing pooled-memory fabrics.

    Consecutive nodes (``hosts_per_rack`` at a time, in seed order) form
    one rack whose hosts all reach the pool through the same fabric;
    their aggregate bandwidth demand contends per ``pool``.
    """

    hosts_per_rack: int = 8
    pool: PoolContentionConfig = field(
        default_factory=PoolContentionConfig)


@dataclass(frozen=True)
class NodeSummary:
    """One node's results, reduced to the scalars the fleet aggregates.

    Built inside the worker from the node's paired baseline/DTL run;
    this — not the full result with its timeseries — is what ships
    through the pool.  Energy fields are the exact floats the full
    results would have produced (same operations, same order), so
    aggregates over summaries are bit-identical to aggregates over full
    results.
    """

    seed: int
    #: Stretched totals (``PowerDownResult.total_energy``) — what
    #: ``fleet_savings`` folds.
    baseline_energy_j: float
    dtl_energy_j: float
    #: Unstretched integrals plus the DTL stretch factor, for the rack
    #: contention model (which adds its own latency penalty).
    baseline_raw_energy_j: float
    dtl_raw_energy_j: float
    dtl_execution_factor: float
    mean_active_ranks: float
    mean_bandwidth_gbs: float
    mean_reserved_bytes: float
    migrated_bytes: int
    power_transitions: int
    #: The DTL run's final telemetry counters; folded into the fleet
    #: totals in node order and then dropped from the retained summary.
    counters: dict[str, float] | None = None

    @property
    def energy_savings(self) -> float:
        """This node's DRAM energy saving."""
        return 1.0 - self.dtl_energy_j / self.baseline_energy_j

    @classmethod
    def from_comparison(cls, seed: int,
                        pair: PowerDownComparisonResult) -> NodeSummary:
        counters = (pair.dtl.telemetry or {}).get("counters") or None
        return cls(
            seed=seed,
            baseline_energy_j=pair.baseline.total_energy,
            dtl_energy_j=pair.dtl.total_energy,
            baseline_raw_energy_j=pair.baseline.energy.total_j,
            dtl_raw_energy_j=pair.dtl.energy.total_j,
            dtl_execution_factor=pair.dtl.execution_time_factor,
            mean_active_ranks=pair.dtl.mean_active_ranks,
            mean_bandwidth_gbs=pair.dtl.mean_bandwidth_gbs,
            mean_reserved_bytes=pair.dtl.mean_reserved_bytes,
            migrated_bytes=pair.dtl.migrated_bytes,
            power_transitions=pair.dtl.power_transitions,
            counters=counters)


@dataclass
class NodeFailure:
    """A node whose simulation did not produce a result."""

    seed: int
    error: str


@dataclass
class ShardAggregate:
    """What one shard's worker ships back: summaries, not payloads."""

    summaries: list[NodeSummary] = field(default_factory=list)
    failures: list[NodeFailure] = field(default_factory=list)


@dataclass(frozen=True)
class _NodeRunner:
    """Picklable per-node unit of work (index -> comparison result).

    ``fail_seeds`` is a deterministic failure-injection hook for tests:
    monkeypatches do not reach pool workers, but a field on the runner
    ships with the task.
    """

    node: PowerDownSimConfig
    base_seed: int
    fail_seeds: tuple[int, ...] = ()

    def __call__(self, index: int) -> PowerDownComparisonResult:
        seed = self.base_seed + index
        if seed in self.fail_seeds:
            raise RuntimeError(f"injected failure for node {seed}")
        return ComparisonSimulator(self.node.with_seed(seed)).run()


@dataclass(frozen=True)
class _FleetShardReducer:
    """Worker-side fold: full comparison results -> one ShardAggregate."""

    base_seed: int

    def fresh(self) -> ShardAggregate:
        return ShardAggregate()

    def item(self, state: ShardAggregate, index: int,
             value: PowerDownComparisonResult) -> None:
        state.summaries.append(
            NodeSummary.from_comparison(self.base_seed + index, value))

    def failure(self, state: ShardAggregate, index: int,
                error: str) -> None:
        state.failures.append(NodeFailure(seed=self.base_seed + index,
                                          error=error))

    def finish(self, state: ShardAggregate) -> ShardAggregate:
        return state


@dataclass
class CounterFold:
    """Fleet counter totals folded during streaming aggregation."""

    sums: dict[str, float] = field(default_factory=dict)
    reporting: int = 0
    missing: int = 0

    def fold(self, counters: dict[str, float] | None) -> None:
        """Fold one node's counters (in node order, for bit-identity)."""
        if not counters:
            self.missing += 1
            return
        self.reporting += 1
        for name, value in counters.items():
            self.sums[name] = self.sums.get(name, 0.0) + value


class _FleetAccumulator:
    """Streaming parent-side reducer over shard aggregates.

    Receives shard outcomes in submission (node) order from
    ``run_tasks(stream=...)``, folds each aggregate's summaries into the
    running fleet state, and keeps only the stripped summaries — the
    shard aggregate itself (and its per-node counter dicts) are released
    as soon as the fold is done.
    """

    def __init__(self, slices: list[tuple[int, int]], base_seed: int):
        self.slices = slices
        self.base_seed = base_seed
        self.nodes: list[NodeSummary] = []
        self.failures: list[NodeFailure] = []
        self.counter_fold = CounterFold()

    def stream(self, index: int, outcome) -> None:
        if not outcome.ok:
            start, stop = self.slices[index]
            self.failures.extend(
                NodeFailure(seed=self.base_seed + node_index,
                            error=outcome.error)
                for node_index in range(start, stop))
            return
        aggregate: ShardAggregate = outcome.value
        for summary in aggregate.summaries:
            self.counter_fold.fold(summary.counters)
            self.nodes.append(dataclasses.replace(summary, counters=None))
        self.failures.extend(aggregate.failures)


@dataclass(frozen=True)
class RackSummary:
    """One rack's pooled-fabric view, derived from its node summaries."""

    rack_index: int
    num_nodes: int
    total_bytes: int
    reserved_bytes: float
    demand_gbs: float
    contention: PoolContention
    #: Contention-stretched energies: the fabric queueing delay adds to
    #: each node's execution time the way the translation/interleaving
    #: penalties do (additively), so the baseline pays the raw slowdown
    #: while the DTL run adds it on top of its own stretch factor.
    baseline_energy_j: float
    dtl_energy_j: float

    @property
    def energy_savings(self) -> float:
        """Contended DRAM energy saving of this rack."""
        return 1.0 - self.dtl_energy_j / self.baseline_energy_j

    def pool_stats(self) -> PoolStats:
        """Capacity/occupancy of this rack's pool as :class:`PoolStats`."""
        return PoolStats(devices=self.num_nodes,
                         total_bytes=self.total_bytes,
                         reserved_bytes=int(round(self.reserved_bytes)))


@dataclass
class FleetResult:
    """Aggregate of every node's outcome."""

    config: FleetConfig
    nodes: list[NodeSummary]
    failures: list[NodeFailure] = field(default_factory=list)
    #: Executor accounting for the fan-out (per-task wall times, shipped
    #: bytes etc.); not part of :meth:`to_record` so records stay
    #: deterministic.
    exec_telemetry: dict = field(default_factory=dict)
    #: Counter totals folded during streaming; ``None`` when the result
    #: was built directly from summaries that still carry counters.
    counter_fold: CounterFold | None = None

    @property
    def per_node_savings(self) -> np.ndarray:
        """Each node's DRAM energy saving."""
        return np.array([node.energy_savings for node in self.nodes])

    @property
    def fleet_savings(self) -> float:
        """Energy-weighted fleet-level DRAM saving."""
        baseline = sum(node.baseline_energy_j for node in self.nodes)
        dtl = sum(node.dtl_energy_j for node in self.nodes)
        return 1.0 - dtl / baseline

    def tco_report(self) -> dict[str, float]:
        """Datacenter-level roll-up through the TCO model."""
        return self.config.tco.report(self.fleet_savings)

    def telemetry_totals(self) -> dict[str, float]:
        """Fleet-wide sums of every node's DTL telemetry counters.

        Counters (accesses, SMC hits, migrated segments, power
        transitions, ...) add across nodes; gauges and residency do not,
        so only counters are aggregated here.  The sums are normally
        folded during streaming aggregation (node order, so the float
        totals are identical in every execution mode); a result built
        directly from counter-carrying summaries folds here instead.

        A node with no telemetry counters is *skipped*, not silently
        folded in as zeros; the ``fleet.*`` meta-counters make the
        difference between "no events" and "no data" visible:

        * ``fleet.nodes_reporting`` — nodes whose counters were summed,
        * ``fleet.nodes_missing_telemetry`` — nodes skipped for lack of
          a snapshot,
        * ``fleet.nodes_failed`` — nodes whose simulation failed
          outright (they appear in :attr:`failures`, not
          :attr:`nodes`).
        """
        fold = self.counter_fold
        if fold is None:
            fold = CounterFold()
            for node in self.nodes:
                fold.fold(node.counters)
        totals = dict(fold.sums)
        totals["fleet.nodes_reporting"] = float(fold.reporting)
        totals["fleet.nodes_missing_telemetry"] = float(fold.missing)
        totals["fleet.nodes_failed"] = float(len(self.failures))
        return totals

    # -- rack view ----------------------------------------------------------

    def rack_summaries(self) -> list[RackSummary]:
        """Per-rack pooled-fabric contention, from the node summaries.

        Requires a :class:`RackConfig`; nodes group into racks by seed
        (``hosts_per_rack`` consecutive seeds per rack), so a failed
        node simply leaves its rack one host short.
        """
        config = self.config
        if not isinstance(config, RackConfig):
            raise TypeError("rack summaries need a RackConfig, got "
                            f"{type(config).__name__}")
        per_rack: dict[int, list[NodeSummary]] = {}
        for node in self.nodes:
            rack = (node.seed - config.base_seed) // config.hosts_per_rack
            per_rack.setdefault(rack, []).append(node)
        node_bytes = config.node.geometry.total_bytes
        summaries = []
        for rack in sorted(per_rack):
            nodes = per_rack[rack]
            demand = sum(node.mean_bandwidth_gbs for node in nodes)
            reserved = sum(node.mean_reserved_bytes for node in nodes)
            contention = pool_contention(demand, config.pool)
            extra = contention.slowdown - 1.0
            baseline = sum(node.baseline_raw_energy_j * (1.0 + extra)
                           for node in nodes)
            dtl = sum(node.dtl_raw_energy_j
                      * (node.dtl_execution_factor + extra)
                      for node in nodes)
            summaries.append(RackSummary(
                rack_index=rack, num_nodes=len(nodes),
                total_bytes=node_bytes * len(nodes),
                reserved_bytes=reserved, demand_gbs=demand,
                contention=contention,
                baseline_energy_j=baseline, dtl_energy_j=dtl))
        return summaries

    def rack_report(self) -> dict[str, float]:
        """Fleet-level roll-up of the rack contention model."""
        racks = self.rack_summaries()
        baseline = sum(rack.baseline_energy_j for rack in racks)
        dtl = sum(rack.dtl_energy_j for rack in racks)
        slowdowns = [rack.contention.slowdown for rack in racks]
        utilizations = [rack.contention.utilization for rack in racks]
        return {
            "num_racks": float(len(racks)),
            "fleet_savings": self.fleet_savings,
            "contended_fleet_savings": 1.0 - dtl / baseline,
            "mean_pool_slowdown": float(np.mean(slowdowns)),
            "max_pool_utilization": float(max(utilizations)),
            "saturated_racks": float(sum(rack.contention.saturated
                                         for rack in racks)),
        }

    # -- reporting ----------------------------------------------------------

    def summary_rows(self) -> list[tuple]:
        """Per-node + fleet rows for reporting."""
        rows = [(f"node {node.seed}", f"{node.energy_savings:.1%}",
                 f"{node.mean_active_ranks:.2f}")
                for node in self.nodes]
        rows.extend((f"node {failure.seed}", "FAILED", failure.error)
                    for failure in self.failures)
        rows.append(("fleet", f"{self.fleet_savings:.1%}", ""))
        return rows

    def to_record(self):
        """Flatten into an :class:`~repro.sim.results.ExperimentRecord`."""
        from repro.sim.results import ExperimentRecord
        return ExperimentRecord("fleet", {
            "fleet_savings": self.fleet_savings,
            "per_node": self.per_node_savings.tolist(),
            "node_seeds": [node.seed for node in self.nodes],
            "failed_seeds": [failure.seed for failure in self.failures],
            **{f"tco_{key}": value
               for key, value in self.tco_report().items()}})


class FleetSimulator:
    """Run the node-level comparison across the whole fleet.

    The fan-out is shard-granular (see the module docstring); set
    ``fail_seeds`` before :meth:`run` to deterministically fail specific
    nodes (testing hook — it ships to the workers with the task).
    """

    name = "fleet"

    def __init__(self, config: FleetConfig | None = None,
                 exec_config: ExecConfig | None = None):
        self.config = config or FleetConfig()
        self.exec_config = exec_config
        self.fail_seeds: tuple[int, ...] = ()

    def node_configs(self) -> list[PowerDownSimConfig]:
        """The per-node configs (template + derived seed)."""
        return [self.config.node.with_seed(self.config.base_seed + index)
                for index in range(self.config.num_nodes)]

    def _exec_config(self) -> ExecConfig:
        """The effective executor config for the shard fan-out.

        Shard tasks are already chunky, so pool chunking is forced to
        one shard per pool job — that is what gives the parent
        shard-granular streaming (and bounds how much result data a
        single pool round trip can pin).
        """
        config = self.exec_config or ExecConfig()
        if config.chunk_size is None:
            config = dataclasses.replace(config, chunk_size=1)
        return config

    def run(self) -> FleetResult:
        """Simulate every node; returns the aggregate.

        Nodes run through :func:`repro.exec.run_tasks` as shard tasks —
        serially by default, in parallel when the exec config (or
        ``REPRO_EXEC_WORKERS``) asks for workers.  A node that fails
        after its retry budget lands in ``FleetResult.failures`` instead
        of aborting the shard; a shard-level failure (worker loss,
        unpicklable result) fails all of its nodes.
        """
        config = self.config
        exec_config = self._exec_config()
        runner = _NodeRunner(node=config.node, base_seed=config.base_seed,
                             fail_seeds=tuple(self.fail_seeds))
        reducer = _FleetShardReducer(base_seed=config.base_seed)
        plan, tasks = shard_tasks(
            runner, reducer, count=config.num_nodes,
            shard_size=config.shard_size, label="fleet-shard",
            cpu_bound=True, item_retries=exec_config.retries)
        accumulator = _FleetAccumulator(slices=list(plan.slices),
                                        base_seed=config.base_seed)
        metrics = MetricsRegistry()
        run_tasks(tasks, config=exec_config, metrics=metrics,
                  stream=accumulator.stream)
        return FleetResult(config=config, nodes=accumulator.nodes,
                           failures=accumulator.failures,
                           exec_telemetry=metrics.snapshot().to_dict(),
                           counter_fold=accumulator.counter_fold)

    # -- stepped execution -----------------------------------------------------
    # One shard per advance, executed in-process through the exact same
    # worker-side fold (:func:`repro.exec.sharding.run_shard`) and the
    # same submission-order streaming fold, so the stepped fleet result
    # is bit-identical to :meth:`run` in every execution mode (the
    # determinism contract of the shard fan-out).  Only the
    # ``exec_telemetry`` side channel differs — it is explicitly not
    # part of :meth:`FleetResult.to_record`.

    def begin(self) -> "FleetRunState":
        """Plan the shards and open the streaming accumulator."""
        config = self.config
        exec_config = self._exec_config()
        runner = _NodeRunner(node=config.node, base_seed=config.base_seed,
                             fail_seeds=tuple(self.fail_seeds))
        reducer = _FleetShardReducer(base_seed=config.base_seed)
        slices = shard_slices(config.num_nodes, config.shard_size)
        return FleetRunState(
            runner=runner, reducer=reducer, slices=slices,
            item_retries=exec_config.retries,
            accumulator=_FleetAccumulator(slices=slices,
                                          base_seed=config.base_seed))

    def advance(self, state: "FleetRunState") -> bool:
        """Run one pending shard; True while more remain after."""
        if state.shard_index >= len(state.slices):
            return False
        start, stop = state.slices[state.shard_index]
        try:
            aggregate = run_shard(state.runner, state.reducer, start, stop,
                                  item_retries=state.item_retries)
        except Exception as exc:  # shard-level failure: all nodes fail
            outcome = TaskOutcome(label=f"fleet-shard[{start}:{stop}]",
                                  error=f"{type(exc).__name__}: {exc}")
        else:
            outcome = TaskOutcome(label=f"fleet-shard[{start}:{stop}]",
                                  value=aggregate)
        state.accumulator.stream(state.shard_index, outcome)
        state.shard_index += 1
        return state.shard_index < len(state.slices)

    def finish(self, state: "FleetRunState") -> FleetResult:
        """Assemble the aggregate from the streamed shard folds."""
        accumulator = state.accumulator
        return FleetResult(config=self.config, nodes=accumulator.nodes,
                           failures=accumulator.failures,
                           exec_telemetry=MetricsRegistry()
                           .snapshot().to_dict(),
                           counter_fold=accumulator.counter_fold)


@dataclass
class FleetRunState:
    """Shard progress of one stepped fleet run."""

    runner: _NodeRunner
    reducer: _FleetShardReducer
    slices: list[tuple[int, int]]
    item_retries: int
    accumulator: _FleetAccumulator
    shard_index: int = 0


__all__ = [
    "CounterFold",
    "FleetConfig",
    "FleetResult",
    "FleetRunState",
    "FleetSimulator",
    "NodeFailure",
    "NodeSummary",
    "RackConfig",
    "RackSummary",
    "ShardAggregate",
]
