"""Multi-tenant service throughput/latency benchmark.

Writes ``BENCH_server.json`` at the repository root: request and access
throughput plus p50/p95/p99 request wall latency at 1, 8, and 64
concurrent tenants, driven by the load generator against an in-process
:class:`~repro.server.server.DtlServer` (no TCP — socket jitter would
pollute the latency numbers; the CI ``server-smoke`` job covers the
socket path).  The server runs its production shape: chaos armed,
periodic audits, admission control on.

The interesting number is how throughput holds as tenants multiply:
every request still funnels through one event loop and per-shard
single-writer apply tasks, so aggregate req/s should stay roughly flat
while per-request latency grows with the queue depth — this benchmark
records exactly that curve.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_server.py

Optional floor gate (kept loose; wall-clock on shared runners)::

    PYTHONPATH=src python benchmarks/bench_server.py --check-rps 20
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import os
import platform
import sys
from pathlib import Path

from repro.server import (DtlServer, LoadgenConfig, LoadgenReport,
                          ServerConfig, run_loadgen)

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_server.json"

TENANT_POINTS = (1, 8, 64)
REQUESTS_PER_TENANT = 12
BATCH = 128
#: One 1 MiB VM per tenant keeps 64 tenants inside the small default
#: geometry (128 MiB), so the 64-tenant point measures queueing, not
#: capacity rejections.
VM_BYTES = 1 << 20
NUM_SHARDS = 2
SEED = 0


def _loadgen_config(tenants: int) -> LoadgenConfig:
    return LoadgenConfig(tenants=tenants,
                         requests_per_tenant=REQUESTS_PER_TENANT,
                         batch=BATCH, vms_per_tenant=1,
                         vm_bytes=VM_BYTES, churn_every=8,
                         seed=SEED)


def _server_config(tenants: int) -> ServerConfig:
    config = ServerConfig(num_shards=NUM_SHARDS, seed=SEED)
    # Each shard's controller caps its host table; give every tenant a
    # slot so the 64-tenant point admits all of them.
    dtl = dataclasses.replace(config.dtl, max_hosts=max(16, tenants))
    return config.replace(dtl=dtl, admission=config.admission.replace(
        max_tenants=max(64, tenants)))


async def _drive(tenants: int) -> tuple[LoadgenReport, int, int]:
    server = DtlServer(_server_config(tenants))
    await server.start(serve_tcp=False)
    report = await run_loadgen(_loadgen_config(tenants),
                               request_fn=server.handle_request)
    await server.drain()
    faults = sum(shard.injector.report().injected_total
                 for shard in server.shards
                 if shard.injector is not None)
    violations = len(server.audit_violations())
    return report, faults, violations


def run_point(tenants: int) -> dict:
    report, faults, violations = asyncio.run(_drive(tenants))
    print(f"{tenants:>3} tenants: {report.requests} requests "
          f"{report.requests_per_s:,.0f} req/s  "
          f"{report.accesses_per_s:,.0f} acc/s  "
          f"p50 {report.percentile(50.0) / 1000:.2f}ms  "
          f"p99 {report.percentile(99.0) / 1000:.2f}ms  "
          f"faults {faults}")
    return {
        "tenants": tenants,
        "requests": report.requests,
        "accesses": report.accesses,
        "rejected": dict(sorted(report.rejected.items())),
        "elapsed_s": round(report.elapsed_s, 3),
        "requests_per_s": round(report.requests_per_s, 1),
        "accesses_per_s": round(report.accesses_per_s),
        "latency_us": {
            "p50": round(report.percentile(50.0), 1),
            "p95": round(report.percentile(95.0), 1),
            "p99": round(report.percentile(99.0), 1),
        },
        "faults_injected": faults,
        "audit_violations": violations,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check-rps", type=float, default=None,
                        metavar="X",
                        help="exit non-zero unless the 8-tenant point "
                             "sustains >= X requests/s")
    args = parser.parse_args(argv)

    points = [run_point(tenants) for tenants in TENANT_POINTS]
    document = {
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "campaign": {
            "requests_per_tenant": REQUESTS_PER_TENANT,
            "batch": BATCH,
            "vm_bytes": VM_BYTES,
            "num_shards": NUM_SHARDS,
            "chaos": True,
            "seed": SEED,
        },
        "points": points,
    }
    OUTPUT.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {OUTPUT}")

    for point in points:
        if point["audit_violations"]:
            print(f"FAIL: {point['tenants']}-tenant point recorded "
                  f"{point['audit_violations']} audit violations",
                  file=sys.stderr)
            return 1
    if args.check_rps is not None:
        gated = next(p for p in points if p["tenants"] == 8)
        if gated["requests_per_s"] < args.check_rps:
            print(f"FAIL: 8-tenant throughput "
                  f"{gated['requests_per_s']:.0f} req/s is below the "
                  f"{args.check_rps:.0f} req/s gate", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
