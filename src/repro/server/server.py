"""The asyncio DTL service: accept, admit, shard, audit, drain, resume.

:class:`DtlServer` is the long-running front door.  Connections speak
the newline-delimited JSON protocol (:mod:`repro.server.protocol`); each
request is admission-checked (:mod:`repro.server.admission`) and then
applied on its tenant's shard through the shard's single-writer task
(:mod:`repro.server.shards`).  Three background concerns run alongside
the request path:

* **live telemetry** — an exporter task writes the combined
  :meth:`MetricsRegistry.snapshot` (server counters plus every shard's
  full controller snapshot) to a file on a configurable interval, in
  the same rendering the ``stats`` op and ``repro stats --watch`` use;
* **always-on chaos** — every shard runs with an armed
  :class:`~repro.faults.injector.FaultInjector` (deterministic
  counter-arithmetic plans, derived per shard) and the consistency
  checker audits after every injected migration abort; and
* **graceful drain** — SIGTERM (or :meth:`DtlServer.drain`) stops
  admitting, flushes every shard's in-flight queue, writes a final
  telemetry snapshot, and persists a ``repro.checkpoint`` state blob
  that a restarted server resumes from bit-identically.

``repro serve`` is the CLI wrapper around :func:`serve_forever`.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.checkpoint import (Checkpoint, CheckpointError, load_checkpoint,
                              save_checkpoint, snapshot as take_snapshot)
from repro.core.config import DtlConfig
from repro.dram.geometry import DramGeometry
from repro.errors import AllocationError
from repro.exec.hashing import derive_seed, stable_hash
from repro.faults.plan import (CxlLinkFault, EccFault, FaultPlan,
                               MigrationAbortFault, PowerExitFault,
                               SmcCorruptionFault)
from repro.server.admission import (AdmissionConfig, AdmissionController,
                                    Rejection)
from repro.server.protocol import (MAX_LINE_BYTES, ErrorCode, ProtocolError,
                                   decode_line, encode, error_response,
                                   ok_response, render_snapshot)
from repro.server.shards import ControllerShard, TenantRecord, shard_of
from repro.telemetry import MetricsRegistry, Snapshot
from repro.units import MIB


def small_dtl_config(policy: str = "paper") -> DtlConfig:
    """The service-scale controller config (seconds-scale geometry).

    Mirrors the chaos soak's small geometry: the server is an online
    system, so profiling thresholds are shrunk to make self-refresh and
    consolidation actually happen within a session.
    """
    return DtlConfig(
        geometry=DramGeometry(channels=2, ranks_per_channel=4,
                              rank_bytes=16 * MIB,
                              segment_bytes=128 * 1024),
        au_bytes=1 * MIB,
        profiling_threshold_ns=200_000.0,
        background_migration=True,
        policy=policy)


def server_fault_plan(seed: int, shard: int) -> FaultPlan:
    """The always-on chaos plan for one shard.

    Sparser than the offline chaos soak (this runs for the server's
    whole life, not a bounded campaign): every fault family is present,
    scheduled by pure counter arithmetic so a replayed request tail
    re-fires identically, and migration aborts are uncapped — the drain
    /restore identity must hold under continuous abort pressure.
    """
    plan_seed = derive_seed(seed, "server-shard", shard)
    return FaultPlan(seed=plan_seed, name=f"server-{seed}-shard{shard}",
                     specs=(
                         CxlLinkFault(start=13, period=211, retries=2,
                                      backoff_ns=40.0),
                         CxlLinkFault(start=97, period=499, kind="stall",
                                      stall_ns=400.0),
                         EccFault(start=29, period=307, bits=1),
                         EccFault(start=601, period=1811, bits=2),
                         SmcCorruptionFault(start=71, period=487),
                         MigrationAbortFault(start=1, period=5),
                         PowerExitFault(target="mpsm", period=3,
                                        kind="delay", delay_ns=800.0),
                         PowerExitFault(target="sr", period=3, kind="fail",
                                        delay_ns=1200.0, failures=2),
                     ))


@dataclass(frozen=True)
class ServerConfig:
    """Everything a :class:`DtlServer` needs, in one replayable bag.

    Attributes:
        host / port: TCP listen address (port 0 picks an ephemeral
            port; the bound port is on :attr:`DtlServer.port`).
        num_shards: Independent single-writer controller shards.
        dtl: Per-shard controller config (every shard is identical).
        admission: Rate-limit / quota / backpressure knobs.
        chaos: Arm the always-on fault injector on every shard.
        chaos_seed: Seed deriving each shard's fault plan.
        access_period_ns: Simulated time per access on a shard clock.
        audit_every: Consistency-audit cadence (applied requests per
            shard); injected migration aborts always audit immediately.
        pump_lines: Background-migration cachelines granted per applied
            request.
        telemetry_path: Exporter output file (None disables the task).
        telemetry_interval_s: Exporter period.
        checkpoint_path: Where drain persists state (None skips).
        seed: Folds into the per-shard fault-plan derivation.
    """

    host: str = "127.0.0.1"
    port: int = 0
    num_shards: int = 2
    dtl: DtlConfig = field(default_factory=small_dtl_config)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    chaos: bool = True
    chaos_seed: int = 0
    access_period_ns: float = 100.0
    audit_every: int = 64
    pump_lines: int = 8
    telemetry_path: str | None = None
    telemetry_interval_s: float = 5.0
    checkpoint_path: str | None = None
    seed: int = 0

    def replace(self, **changes: Any) -> "ServerConfig":
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        import dataclasses
        return dataclasses.replace(self, **changes)

    def structure_hash(self) -> str:
        """Digest of the fields a checkpoint must agree on to restore.

        Listen address, telemetry paths, and intervals are deployment
        detail — a resumed server may move; shard count, controller
        config, chaos arming, and admission limits are structural.
        """
        return stable_hash({
            "num_shards": self.num_shards,
            "dtl": self.dtl,
            "admission": self.admission,
            "chaos": self.chaos,
            "chaos_seed": self.chaos_seed,
            "access_period_ns": self.access_period_ns,
            "audit_every": self.audit_every,
            "pump_lines": self.pump_lines,
            "seed": self.seed,
        })


class DtlServer:
    """A live multi-tenant DTL service over sharded controllers."""

    def __init__(self, config: ServerConfig | None = None):
        self.config = config if config is not None else ServerConfig()
        cfg = self.config
        self.metrics = MetricsRegistry()
        self.shards = [
            ControllerShard(
                index, cfg.dtl,
                fault_plan=(server_fault_plan(
                    derive_seed(cfg.seed, cfg.chaos_seed), index)
                    if cfg.chaos else None),
                access_period_ns=cfg.access_period_ns,
                audit_every=cfg.audit_every,
                pump_lines=cfg.pump_lines,
                queue_depth=cfg.admission.queue_depth)
            for index in range(cfg.num_shards)]
        self.admission = AdmissionController(cfg.admission)
        self.tenants: dict[str, TenantRecord] = {}
        # Per-shard free host-ID pools (a controller's host table is
        # bounded by DtlConfig.max_hosts).
        self._free_hosts: list[list[int]] = [
            list(range(cfg.dtl.max_hosts)) for _ in range(cfg.num_shards)]
        self.draining = False
        self._server: asyncio.base_events.Server | None = None
        self._telemetry_task: asyncio.Task | None = None
        self.port: int | None = None
        self._requests = self.metrics.counter("server.requests")
        self._accesses = self.metrics.counter("server.accesses")
        self._allocations = self.metrics.counter("server.allocations")
        self._frees = self.metrics.counter("server.frees")
        self._opened = self.metrics.counter("server.tenants_opened")
        self._closed = self.metrics.counter("server.tenants_closed")
        self._telemetry_writes = self.metrics.counter(
            "server.telemetry_writes")

    # -- lifecycle ---------------------------------------------------------

    async def start(self, serve_tcp: bool = True) -> None:
        """Spawn shard apply tasks (and the TCP listener + exporter)."""
        for shard in self.shards:
            shard.start()
        if serve_tcp:
            self._server = await asyncio.start_server(
                self.handle_connection, host=self.config.host,
                port=self.config.port, limit=MAX_LINE_BYTES)
            self.port = self._server.sockets[0].getsockname()[1]
        if self.config.telemetry_path is not None:
            self.write_telemetry()
            self._telemetry_task = asyncio.get_running_loop().create_task(
                self._telemetry_loop(), name="dtl-telemetry")

    async def drain(self) -> str | None:
        """Graceful shutdown: reject, flush, export, checkpoint.

        Returns the checkpoint path when one was written.
        """
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for shard in self.shards:
            await shard.stop()
        if self._telemetry_task is not None:
            self._telemetry_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._telemetry_task
            self._telemetry_task = None
        if self.config.telemetry_path is not None:
            self.write_telemetry()
        if self.config.checkpoint_path is not None:
            self.write_checkpoint(self.config.checkpoint_path)
            return self.config.checkpoint_path
        return None

    # -- connection layer --------------------------------------------------

    async def handle_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        """One client connection: NDJSON frames in, responses out."""
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(encode(error_response(
                        ErrorCode.BAD_REQUEST,
                        f"frame exceeds {MAX_LINE_BYTES} bytes")))
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = decode_line(line)
                except ProtocolError as exc:
                    response = error_response(ErrorCode.BAD_REQUEST,
                                              str(exc))
                else:
                    response = await self.handle_request(request)
                writer.write(encode(response))
                await writer.drain()
        except ConnectionError:
            pass
        finally:
            with contextlib.suppress(ConnectionError):
                writer.close()
                await writer.wait_closed()

    # -- request dispatch --------------------------------------------------

    async def handle_request(self, request: dict[str, Any],
                             ) -> dict[str, Any]:
        """Serve one protocol request (transport-independent).

        This is the surface the TCP layer, the in-process load
        generator, and the drain/restore replay all share: given the
        same request sequence, a server produces the same responses and
        the same shard state — the determinism the soak pins down.
        """
        op = request.get("op")
        if not isinstance(op, str):
            return self._reject(request, Rejection(
                ErrorCode.BAD_REQUEST, "request has no 'op' field"))
        handler = self._HANDLERS.get(op)
        if handler is None:
            return self._reject(request, Rejection(
                ErrorCode.UNKNOWN_OP, f"unknown op {op!r}"))
        self._requests.inc()
        if self.draining and op != "stats":
            return self._reject(request, Rejection(
                ErrorCode.DRAINING, "server is draining"))
        try:
            return await handler(self, request)
        except _RequestError as exc:
            return self._reject(request, exc.rejection)
        except Exception as exc:  # noqa: BLE001 - fault barrier
            self.metrics.counter("server.internal_errors").inc()
            return error_response(ErrorCode.INTERNAL,
                                  f"{type(exc).__name__}: {exc}", request)

    def _reject(self, request: dict[str, Any],
                rejection: Rejection) -> dict[str, Any]:
        self.metrics.counter(
            f"server.rejected.{rejection.code.value}").inc()
        extra = ({}  if rejection.retry_after_s is None
                 else {"retry_after_s": rejection.retry_after_s})
        return error_response(rejection.code, rejection.message, request,
                              **extra)

    # -- field helpers -----------------------------------------------------

    @staticmethod
    def _time_of(request: dict[str, Any]) -> float | None:
        t = request.get("t")
        if t is None:
            return None
        if not isinstance(t, (int, float)):
            raise _RequestError(Rejection(
                ErrorCode.BAD_REQUEST, "'t' must be a number"))
        return float(t)

    def _clock(self, t_s: float | None) -> float:
        """Admission clock: the request's logical time, else wall time."""
        return t_s if t_s is not None else time.monotonic()

    def _tenant_of(self, request: dict[str, Any]) -> TenantRecord:
        name = request.get("tenant")
        if not isinstance(name, str) or not name:
            raise _RequestError(Rejection(
                ErrorCode.BAD_REQUEST, "request has no 'tenant' field"))
        record = self.tenants.get(name)
        if record is None:
            raise _RequestError(Rejection(
                ErrorCode.UNKNOWN_TENANT, f"tenant {name!r} is not open"))
        return record

    def _rate_gate(self, record: TenantRecord, t_s: float | None,
                   cost: float = 1.0) -> None:
        rejection = self.admission.admit_request(
            record.name, self._clock(t_s), cost)
        if rejection is not None:
            raise _RequestError(rejection)

    # -- operations --------------------------------------------------------

    async def _op_open_tenant(self, request: dict[str, Any],
                              ) -> dict[str, Any]:
        name = request.get("tenant")
        if not isinstance(name, str) or not name:
            raise _RequestError(Rejection(
                ErrorCode.BAD_REQUEST, "open_tenant needs 'tenant'"))
        t_s = self._time_of(request)
        record = self.tenants.get(name)
        if record is None:
            rejection = self.admission.admit_open(name, self._clock(t_s))
            if rejection is not None:
                raise _RequestError(rejection)
            shard_index = shard_of(name, self.config.num_shards)
            free_hosts = self._free_hosts[shard_index]
            if not free_hosts:
                self.admission.forget(name)
                raise _RequestError(Rejection(
                    ErrorCode.TENANT_LIMIT,
                    f"shard {shard_index} has no free host IDs"))
            record = TenantRecord(name=name, shard=shard_index,
                                  host_id=free_hosts.pop(0))
            self.tenants[name] = record
            self._opened.inc()
        return ok_response("open_tenant", request, tenant=name,
                           shard=record.shard, host_id=record.host_id,
                           quota_bytes=self.config.admission.quota_bytes)

    async def _op_allocate(self, request: dict[str, Any]) -> dict[str, Any]:
        record = self._tenant_of(request)
        t_s = self._time_of(request)
        num_bytes = request.get("bytes")
        if not isinstance(num_bytes, int) or num_bytes <= 0:
            raise _RequestError(Rejection(
                ErrorCode.BAD_REQUEST, "allocate needs positive 'bytes'"))
        self._rate_gate(record, t_s)
        shard = self.shards[record.shard]
        reserve = shard.controller.aus_for_bytes(num_bytes) \
            * self.config.dtl.au_bytes
        rejection = self.admission.admit_reservation(record.name, reserve)
        if rejection is not None:
            raise _RequestError(rejection)
        try:
            vm = await shard.submit(shard.apply_allocate, record.host_id,
                                    num_bytes, t_s)
        except AllocationError as exc:
            raise _RequestError(Rejection(ErrorCode.CAPACITY, str(exc)))
        self.admission.reserve(record.name, vm.reserved_bytes)
        record.vm_ids.add(vm.vm_id)
        self._allocations.inc()
        segments = len(vm.au_ids) * shard.controller.host_layout \
            .segments_per_au
        return ok_response("allocate", request, vm=vm.vm_id,
                           bytes=vm.reserved_bytes, segments=segments)

    def _vm_of(self, record: TenantRecord,
               request: dict[str, Any]):
        vm_id = request.get("vm")
        if not isinstance(vm_id, int):
            raise _RequestError(Rejection(
                ErrorCode.BAD_REQUEST, "request needs an integer 'vm'"))
        if vm_id not in record.vm_ids:
            raise _RequestError(Rejection(
                ErrorCode.NOT_OWNER,
                f"VM {vm_id} does not belong to tenant {record.name!r}"))
        return self.shards[record.shard].controller.vm_handle(vm_id)

    async def _op_free(self, request: dict[str, Any]) -> dict[str, Any]:
        record = self._tenant_of(request)
        t_s = self._time_of(request)
        self._rate_gate(record, t_s)
        vm = self._vm_of(record, request)
        shard = self.shards[record.shard]
        freed = await shard.submit(shard.apply_free, vm, t_s)
        self.admission.release(record.name, freed)
        record.vm_ids.discard(vm.vm_id)
        self._frees.inc()
        return ok_response("free", request, vm=vm.vm_id, freed=freed)

    async def _op_access_batch(self, request: dict[str, Any],
                               ) -> dict[str, Any]:
        record = self._tenant_of(request)
        t_s = self._time_of(request)
        vm = self._vm_of(record, request)
        shard = self.shards[record.shard]
        segments = request.get("segments")
        if not isinstance(segments, list) or not segments:
            raise _RequestError(Rejection(
                ErrorCode.BAD_REQUEST,
                "access_batch needs a non-empty 'segments' list"))
        n = len(segments)
        try:
            segment_array = np.asarray(segments, dtype=np.int64)
        except (TypeError, ValueError):
            raise _RequestError(Rejection(
                ErrorCode.BAD_REQUEST, "'segments' must be integers"))
        layout = shard.controller.host_layout
        limit = len(vm.au_ids) * layout.segments_per_au
        if segment_array.min() < 0 or segment_array.max() >= limit:
            raise _RequestError(Rejection(
                ErrorCode.OUT_OF_RANGE,
                f"segment index outside the VM's 0..{limit - 1} range"))
        lines = request.get("lines")
        if lines is None:
            line_array = np.zeros(n, dtype=np.int64)
        else:
            if not isinstance(lines, list) or len(lines) != n:
                raise _RequestError(Rejection(
                    ErrorCode.BAD_REQUEST,
                    "'lines' must match 'segments' in length"))
            line_array = np.asarray(lines, dtype=np.int64)
            lines_per_segment = \
                shard.controller.geometry.segment_bytes // 64
            if line_array.min() < 0 or \
                    line_array.max() >= lines_per_segment:
                raise _RequestError(Rejection(
                    ErrorCode.OUT_OF_RANGE,
                    f"line index outside 0..{lines_per_segment - 1}"))
        writes = request.get("writes")
        if writes is None:
            write_array = np.zeros(n, dtype=bool)
        else:
            if not isinstance(writes, list) or len(writes) != n:
                raise _RequestError(Rejection(
                    ErrorCode.BAD_REQUEST,
                    "'writes' must match 'segments' in length"))
            write_array = np.asarray(writes, dtype=bool)
        self._rate_gate(record, t_s, cost=self.admission.batch_cost(n))
        result = await shard.submit(shard.apply_access_batch, vm,
                                    segment_array, line_array, write_array,
                                    t_s)
        self._accesses.inc(n)
        return ok_response(
            "access_batch", request, n=n,
            total_latency_ns=float(result.latency_ns.sum()),
            wake_ns=float(result.wake_penalty_ns.sum()),
            smc_l1_hits=int(result.smc_l1_hits.sum()),
            smc_l2_hits=int(result.smc_l2_hits.sum()),
            redirected_writes=int(result.routed_to_new_dsn.sum()))

    async def _op_stats(self, request: dict[str, Any]) -> dict[str, Any]:
        return ok_response("stats", request,
                           snapshot=self.snapshot().to_dict())

    async def _op_close(self, request: dict[str, Any]) -> dict[str, Any]:
        record = self._tenant_of(request)
        t_s = self._time_of(request)
        shard = self.shards[record.shard]
        freed = 0
        for vm_id in sorted(record.vm_ids):
            vm = shard.controller.vm_handle(vm_id)
            freed += await shard.submit(shard.apply_free, vm, t_s)
        self.admission.release(record.name, freed)
        self.admission.forget(record.name)
        self._free_hosts[record.shard].append(record.host_id)
        del self.tenants[record.name]
        self._closed.inc()
        return ok_response("close", request, tenant=record.name,
                           freed=freed)

    _HANDLERS = {
        "open_tenant": _op_open_tenant,
        "allocate": _op_allocate,
        "free": _op_free,
        "access_batch": _op_access_batch,
        "stats": _op_stats,
        "close": _op_close,
    }

    # -- telemetry ---------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Server counters plus every shard's full controller snapshot."""
        self.metrics.gauge("server.tenants").set(len(self.tenants))
        self.metrics.gauge("server.draining").set(float(self.draining))
        violations = 0
        for shard in self.shards:
            prefix = f"server.shard.{shard.index}"
            self.metrics.gauge(f"{prefix}.queue_depth").set(
                shard.queue_depth)
            self.metrics.gauge(f"{prefix}.applied").set(shard.applied)
            self.metrics.gauge(f"{prefix}.audits").set(shard.audits)
            self.metrics.gauge(f"{prefix}.violations").set(
                len(shard.violations))
            violations += len(shard.violations)
        self.metrics.gauge("server.audit_violations").set(violations)
        detail = {
            "shards": {str(shard.index): shard.apply_stats()
                       for shard in self.shards},
            "tenants": {record.name: {
                "shard": record.shard, "host_id": record.host_id,
                "vms": sorted(record.vm_ids),
                "reserved_bytes":
                    self.admission.reserved_bytes(record.name)}
                for record in self.tenants.values()},
        }
        return self.metrics.snapshot(detail=detail)

    def write_telemetry(self) -> None:
        """Atomically export the current snapshot to the telemetry file."""
        path = self.config.telemetry_path
        if path is None:
            return
        document = render_snapshot(self.snapshot())
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory,
                                        suffix=".telemetry.tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(document + "\n")
            os.replace(tmp_path, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_path)
            raise
        self._telemetry_writes.inc()

    async def _telemetry_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.telemetry_interval_s)
            self.write_telemetry()

    # -- isolation / audits ------------------------------------------------

    def audit_violations(self) -> list[str]:
        """Every invariant violation any shard's audits have found."""
        violations: list[str] = []
        for shard in self.shards:
            violations.extend(
                f"shard {shard.index}: {violation}"
                for violation in shard.violations)
        return violations

    def leak_report(self) -> list[str]:
        """Cross-tenant leak scan: tenants' mapped DSNs must be disjoint.

        Segments being vacated by an in-flight background migration are
        exempt (the copy legitimately holds both endpoints until
        retirement); everything else overlapping is a leak.
        """
        leaks: list[str] = []
        for shard in self.shards:
            inflight = {
                int(request.old_dsn) for request
                in shard.controller.migration.tracked_requests()} | {
                int(request.new_dsn) for request
                in shard.controller.migration.tracked_requests()}
            owners: dict[int, str] = {}
            for record in self.tenants.values():
                if record.shard != shard.index:
                    continue
                for dsn in shard.dsns_of_host(record.host_id):
                    if dsn in inflight:
                        continue
                    previous = owners.get(dsn)
                    if previous is not None:
                        leaks.append(
                            f"shard {shard.index}: DSN {dsn:#x} mapped "
                            f"for both {previous!r} and {record.name!r}")
                    owners[dsn] = record.name
        return leaks

    # -- checkpoint / restore ----------------------------------------------

    @property
    def applied_total(self) -> int:
        """Requests applied across every shard since birth."""
        return sum(shard.applied for shard in self.shards)

    def state_payload(self) -> dict[str, Any]:
        """The complete serialisable server state."""
        return {
            "structure": self.config.structure_hash(),
            "shards": [shard.state_dict() for shard in self.shards],
            "tenants": {name: record.state_dict()
                        for name, record in self.tenants.items()},
            "admission": self.admission.state_dict(),
            "free_hosts": [list(pool) for pool in self._free_hosts],
            "metrics": self.metrics.state_dict(),
        }

    def write_checkpoint(self, path: str) -> None:
        """Persist the server state as a ``repro.checkpoint`` blob."""
        checkpoint = take_snapshot(
            "server", self.applied_total, self.state_payload(),
            meta={"structure": self.config.structure_hash(),
                  "tenants": len(self.tenants)})
        save_checkpoint(checkpoint, path)

    def load_payload(self, payload: dict[str, Any]) -> None:
        """Restore :meth:`state_payload` output onto this server.

        Must be called before :meth:`start` (shards are loaded in
        single-writer stillness).
        """
        if payload["structure"] != self.config.structure_hash():
            raise CheckpointError(
                "checkpoint was taken by a structurally different server "
                "config (shards / geometry / admission / chaos)")
        for shard, state in zip(self.shards, payload["shards"]):
            shard.load_state_dict(state)
        self.tenants = {name: TenantRecord.from_state(state)
                        for name, state in payload["tenants"].items()}
        self.admission.load_state_dict(payload["admission"])
        self._free_hosts = [list(pool) for pool in payload["free_hosts"]]
        self.metrics.load_state_dict(payload["metrics"])

    def restore(self, path: str) -> Checkpoint:
        """Load a drain checkpoint from ``path`` (see :meth:`drain`)."""
        checkpoint = load_checkpoint(path)
        if checkpoint.kind != "server":
            raise CheckpointError(
                f"{path} holds a {checkpoint.kind!r} checkpoint, "
                "not a server state")
        from repro.checkpoint import restore as restore_payload
        self.load_payload(restore_payload(checkpoint))
        return checkpoint


class _RequestError(Exception):
    """Internal control flow: a typed rejection raised mid-handler."""

    def __init__(self, rejection: Rejection):
        super().__init__(rejection.message)
        self.rejection = rejection


async def _serve(config: ServerConfig, resume: bool) -> int:
    server = DtlServer(config)
    resumed_from = None
    if resume and config.checkpoint_path is not None \
            and os.path.exists(config.checkpoint_path):
        checkpoint = server.restore(config.checkpoint_path)
        resumed_from = checkpoint.step
    await server.start()
    if resumed_from is not None:
        print(f"resumed from {config.checkpoint_path!r} "
              f"({resumed_from} requests applied before drain)")
    print(f"repro.server listening on {config.host}:{server.port} "
          f"({config.num_shards} shard(s), chaos "
          f"{'armed' if config.chaos else 'off'})", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    await stop.wait()
    print("drain: flushing shards...", flush=True)
    checkpoint_path = await server.drain()
    if checkpoint_path is not None:
        print(f"drain: state checkpointed to {checkpoint_path!r} "
              f"({server.applied_total} requests applied)")
    violations = server.audit_violations()
    for violation in violations[:10]:
        print(f"AUDIT VIOLATION: {violation}")
    return 1 if violations else 0


def serve_forever(config: ServerConfig, resume: bool = False) -> int:
    """Run a server until SIGTERM/SIGINT; returns a process exit code."""
    return asyncio.run(_serve(config, resume))


__all__ = ["small_dtl_config", "server_fault_plan", "ServerConfig",
           "DtlServer", "serve_forever"]
