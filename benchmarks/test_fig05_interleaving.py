"""Figure 5: performance impact of disabling rank interleaving.

Paper: keeping channel interleaving but dropping rank interleaving costs
1.7 % with local DRAM latency and only 1.4 % under CXL latency — long
remote latency shrinks the *relative* value of rank-level parallelism.
"""

from repro.sim.perf_model import PerformanceModel

from conftest import report

PAPER_LOCAL = 0.017
PAPER_CXL = 0.014


def measure():
    model = PerformanceModel()
    return (model.mean_interleaving_slowdown(cxl=False),
            model.mean_interleaving_slowdown(cxl=True))


def test_fig05_interleaving_cost(benchmark):
    local, cxl = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("Figure 5: cost of disabling rank interleaving", [
        ("local DRAM", f"{local:+.2%}", f"(paper +{PAPER_LOCAL:.1%})"),
        ("CXL memory", f"{cxl:+.2%}", f"(paper +{PAPER_CXL:.1%})"),
    ], header=("latency", "measured", "paper"))
    # Shape: both are small single-digit percents, and CXL < local.
    assert 0.25 * PAPER_LOCAL < local < 2.0 * PAPER_LOCAL
    assert 0.25 * PAPER_CXL < cxl < 2.0 * PAPER_CXL
    assert cxl < local


def test_fig05_ratio_matches_paper():
    local, cxl = measure()
    # The paper's CXL/local ratio is 1.4/1.7 ~ 0.82.
    assert 0.65 < cxl / local < 0.95


def test_fig05_trace_driven_crosscheck(benchmark):
    """Independent method: replay traces against the bank substrate with
    the conventional interleaved layout vs the DTL's concentrated layout.
    Smaller absolute numbers (fewer co-runners than the paper's 28-core
    testbed) but the same ordering: a small cost, and relatively smaller
    under CXL latency."""
    import numpy as np

    from repro.sim.rank_sweep import interleaving_comparison
    from repro.workloads.cloudsuite import PROFILES

    def measure():
        locals_, cxls = [], []
        for index, name in enumerate(("graph-analytics", "data-serving",
                                      "data-caching", "media-streaming")):
            result = interleaving_comparison(PROFILES[name],
                                             num_accesses=20_000,
                                             seed=index)
            locals_.append(result["local"])
            cxls.append(result["cxl"])
        return float(np.mean(locals_)), float(np.mean(cxls))

    local, cxl = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("Figure 5 (trace-driven cross-check)", [
        ("local DRAM", f"{local:+.2%}", "(paper +1.7%)"),
        ("CXL memory", f"{cxl:+.2%}", "(paper +1.4%)"),
    ], header=("latency", "measured", "paper"))
    assert 0.0 < local < 0.03
    assert 0.0 < cxl <= local
