"""Wire-protocol framing: encode/decode, typed responses, limits."""

import json

import pytest

from repro.server.protocol import (MAX_LINE_BYTES, ErrorCode, ProtocolError,
                                   decode_line, encode, error_response,
                                   ok_response, render_snapshot)
from repro.telemetry import MetricsRegistry


class TestFraming:
    def test_encode_is_one_compact_sorted_line(self):
        frame = encode({"op": "stats", "a": 1})
        assert frame == b'{"a":1,"op":"stats"}\n'
        assert frame.count(b"\n") == 1

    def test_round_trip(self):
        message = {"op": "access_batch", "tenant": "t0",
                   "segments": [0, 1, 2], "t": 1.5}
        assert decode_line(encode(message).rstrip(b"\n")) == message

    def test_decode_accepts_str_and_bytes(self):
        assert decode_line('{"op":"stats"}') == {"op": "stats"}
        assert decode_line(b'{"op":"stats"}') == {"op": "stats"}

    def test_junk_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="not JSON"):
            decode_line(b"not json at all")

    def test_non_object_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="object"):
            decode_line(b"[1, 2, 3]")

    def test_oversize_frame_is_a_protocol_error(self):
        huge = b'"' + b"x" * MAX_LINE_BYTES + b'"'
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_line(huge)


class TestResponses:
    def test_ok_echoes_request_id(self):
        response = ok_response("allocate", {"op": "allocate", "id": 7},
                               vm=3)
        assert response == {"ok": True, "op": "allocate", "id": 7, "vm": 3}

    def test_ok_without_id(self):
        assert "id" not in ok_response("stats", {"op": "stats"})

    def test_error_carries_typed_code(self):
        response = error_response(ErrorCode.RATE_LIMITED, "slow down",
                                  {"op": "allocate", "id": 1},
                                  retry_after_s=0.25)
        assert response["ok"] is False
        assert response["error"] == "rate_limited"
        assert response["retry_after_s"] == 0.25
        assert response["id"] == 1

    def test_every_error_code_is_snake_case(self):
        for code in ErrorCode:
            assert code.value == code.value.lower()
            assert " " not in code.value


class TestRenderSnapshot:
    def test_render_is_snapshot_json(self):
        registry = MetricsRegistry()
        registry.counter("server.requests").inc(3)
        snapshot = registry.snapshot()
        document = render_snapshot(snapshot)
        assert json.loads(document)["counters"]["server.requests"] == 3
        assert document == snapshot.to_json(indent=2)
