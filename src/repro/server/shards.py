"""Sharded controllers: the single-writer substrate behind the server.

Tenants are spread over ``num_shards`` independent
:class:`~repro.core.controller.DtlController` instances by a
*consistent* hash of the tenant name (:func:`shard_of` — SHA-256, not
``hash()``, so placement survives restarts and ``PYTHONHASHSEED``).
Each shard owns exactly one asyncio **apply task** draining a bounded
queue: every mutation of the bit-exact core happens on that task, in
submission order, so the controller never sees concurrent writers no
matter how many connections are live.  A full queue blocks the
submitting connection handler — backpressure, not buffering.

Each shard carries its own simulated clock (advanced by request
timestamps and per-access periods), an optional always-armed
:class:`~repro.faults.injector.FaultInjector`, and a
:class:`~repro.core.checker.ConsistencyChecker` that audits after every
injected migration abort plus every ``audit_every`` applied requests —
the chaos soak's discipline, running continuously.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.checker import ConsistencyChecker
from repro.core.config import DtlConfig
from repro.core.controller import BatchAccessResult, DtlController, VmHandle
from repro.cxl.link import CxlLinkConfig
from repro.faults.chaos import DRAIN_STEP_LIMIT
from repro.faults.hooks import HookPoint
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan


def shard_of(tenant: str, num_shards: int) -> int:
    """Consistent tenant→shard placement (stable across processes)."""
    digest = hashlib.sha256(tenant.encode()).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


@dataclass
class TenantRecord:
    """Server-side registration of one tenant."""

    name: str
    shard: int
    host_id: int
    vm_ids: set[int] = field(default_factory=set)

    def state_dict(self) -> dict[str, Any]:
        """Serialisable form (checkpoint payload)."""
        return {"name": self.name, "shard": self.shard,
                "host_id": self.host_id,
                "vm_ids": sorted(self.vm_ids)}

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "TenantRecord":
        """Rebuild from :meth:`state_dict` output."""
        return cls(name=state["name"], shard=state["shard"],
                   host_id=state["host_id"],
                   vm_ids=set(state["vm_ids"]))


_STOP = object()


class ControllerShard:
    """One single-writer DTL shard with its own clock, chaos, and audits.

    The synchronous ``apply_*`` methods are only ever called from the
    shard's apply task (or from a drained, worker-less shard during
    restore) — that is the single-writer contract.  Async callers go
    through :meth:`submit`.
    """

    def __init__(self, index: int, config: DtlConfig,
                 fault_plan: FaultPlan | None = None,
                 access_period_ns: float = 100.0,
                 audit_every: int = 64,
                 pump_lines: int = 8,
                 queue_depth: int = 128):
        self.index = index
        self.controller = DtlController(config)
        self.injector: FaultInjector | None = None
        if fault_plan is not None:
            self.injector = FaultInjector(
                fault_plan, registry=self.controller.metrics,
                trace=self.controller.trace, link=CxlLinkConfig())
            self.controller.arm_faults(self.injector)
        self.checker = ConsistencyChecker(self.controller)
        self.access_period_ns = access_period_ns
        self.audit_every = audit_every
        self.pump_lines = pump_lines
        self.clock_ns = 0.0
        self.applied = 0
        self.audits = 0
        self.violations: list[str] = []
        self._aborts_seen = 0
        self._queue: asyncio.Queue | None = None
        self._queue_depth = queue_depth
        self._worker: asyncio.Task | None = None

    # -- apply-task lifecycle ----------------------------------------------

    def start(self) -> None:
        """Create the apply queue and spawn the single-writer task."""
        if self._worker is not None:
            return
        self._queue = asyncio.Queue(maxsize=self._queue_depth)
        self._worker = asyncio.get_running_loop().create_task(
            self._drain_queue(), name=f"dtl-shard-{self.index}")

    async def _drain_queue(self) -> None:
        assert self._queue is not None
        while True:
            item = await self._queue.get()
            try:
                if item is _STOP:
                    return
                fn, args, future = item
                if future.cancelled():
                    continue
                try:
                    future.set_result(fn(*args))
                except Exception as exc:  # typed by the server layer
                    future.set_exception(exc)
            finally:
                self._queue.task_done()

    async def submit(self, fn: Callable, *args: Any) -> Any:
        """Run ``fn(*args)`` on the apply task; awaits the result.

        Blocks (backpressure) while the shard's queue is full.
        """
        if self._worker is None:
            raise RuntimeError(f"shard {self.index} is not started")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await self._queue.put((fn, args, future))
        return await future

    async def stop(self) -> None:
        """Flush every queued request, then retire the apply task."""
        if self._worker is None:
            return
        await self._queue.put(_STOP)
        await self._worker
        self._worker = None
        self._queue = None

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting on the apply queue."""
        return self._queue.qsize() if self._queue is not None else 0

    # -- clock -------------------------------------------------------------

    @property
    def now_s(self) -> float:
        """The shard's simulated clock, in seconds."""
        return self.clock_ns / 1e9

    def observe_time(self, t_s: float | None) -> None:
        """Fold a request timestamp into the clock (never backwards)."""
        if t_s is not None:
            self.clock_ns = max(self.clock_ns, float(t_s) * 1e9)

    # -- single-writer operations ------------------------------------------

    def apply_allocate(self, host_id: int, num_bytes: int,
                       t_s: float | None = None) -> VmHandle:
        """Allocate a VM on this shard (raises ``AllocationError``)."""
        self.observe_time(t_s)
        vm = self.controller.allocate_vm(host_id, num_bytes,
                                         now_s=self.now_s)
        self._after_apply()
        return vm

    def apply_free(self, vm: VmHandle, t_s: float | None = None) -> int:
        """Free a VM; returns the bytes released.

        In-flight migrations are drained first: freeing a segment whose
        copy is mid-flight would leave the migration engine holding a
        dangling source (and retiring it would resurrect the freed
        mapping), so a free always lands on a quiesced queue — the
        discipline the consistency checker's migration-tracking audit
        enforces.
        """
        self.observe_time(t_s)
        self._drain_migrations()
        self.controller.deallocate_vm(vm, now_s=self.now_s)
        self._after_apply()
        return vm.reserved_bytes

    def _drain_migrations(self) -> None:
        """Pump background migrations until the queue is quiet."""
        steps = 0
        while self.controller.migration.pending_count():
            steps += 1
            if steps > DRAIN_STEP_LIMIT:
                self.violations.append(
                    f"shard {self.index}: migration drain exceeded "
                    f"{DRAIN_STEP_LIMIT} pump steps")
                break
            self.controller.pump_migrations(self.now_s, lines=16)
            self.clock_ns += self.access_period_ns

    def apply_access_batch(self, vm: VmHandle, segments: np.ndarray,
                           lines: np.ndarray, writes: np.ndarray,
                           t_s: float | None = None) -> BatchAccessResult:
        """One validated access batch against ``vm``'s reservation.

        ``segments`` index the VM's own segment space (``0 ..
        num_aus*segments_per_au``); the caller has already bounds- and
        ownership-checked them, so nothing here can reach another
        tenant's mapping.
        """
        self.observe_time(t_s)
        controller = self.controller
        layout = controller.host_layout
        per_au = layout.segments_per_au
        au_ids = np.asarray(vm.au_ids, dtype=np.int64)[segments // per_au]
        hsn_local = au_ids * per_au + segments % per_au
        hpas = (hsn_local << layout.segment_offset_bits) + lines * 64
        result = controller.access_batch(vm.host_id, hpas, writes,
                                         now_ns=self.clock_ns)
        self.clock_ns += len(hpas) * self.access_period_ns
        controller.tick(self.clock_ns)
        controller.end_window()
        controller.pump_migrations(self.now_s, lines=self.pump_lines)
        self._after_apply()
        return result

    def apply_stats(self) -> dict[str, Any]:
        """The shard controller's telemetry snapshot, as a dict."""
        return self.controller.telemetry_snapshot(now_s=self.now_s).to_dict()

    # -- chaos audits ------------------------------------------------------

    def _after_apply(self) -> None:
        """Bookkeeping after every applied mutation: drain progress and
        the always-on audit cadence."""
        self.applied += 1
        force = False
        if self.injector is not None:
            aborts = self.injector.injected(HookPoint.MIGRATION_COPY)
            if aborts > self._aborts_seen:
                self._aborts_seen = aborts
                force = True
        if force or (self.audit_every
                     and self.applied % self.audit_every == 0):
            self.audit()

    def audit(self) -> None:
        """Run one consistency audit (tolerating in-flight migrations)."""
        self.audits += 1
        tolerance = len(self.controller.migration.tracked_requests())
        outcome = self.checker.audit(balance_tolerance=tolerance)
        self.violations.extend(outcome.violations)

    # -- isolation ---------------------------------------------------------

    def dsns_of_host(self, host_id: int) -> set[int]:
        """Every device segment currently mapped for ``host_id``."""
        tables = self.controller.tables
        layout = self.controller.host_layout
        owned: set[int] = set()
        for au_id in tables.au_ids(host_id):
            for au_offset in range(layout.segments_per_au):
                dsn = tables.try_walk(
                    layout.pack_hsn(host_id, au_id, au_offset))
                if dsn is not None:
                    owned.add(int(dsn))
        return owned

    # -- identity ----------------------------------------------------------

    def fingerprint(self) -> str:
        """Value-identity digest of the shard's observable state.

        Deliberately *not* a pickle hash (pickle memoisation encodes
        aliasing, see docs/CHECKPOINT.md): this is a canonical JSON
        document over the mapping tables, allocator, power states,
        clock, and every telemetry counter — if two shards agree here,
        they will serve identical futures.
        """
        controller = self.controller
        tables = controller.tables
        mapping = [[dsn, tables.hsn_of_dsn(dsn)]
                   for dsn in sorted(tables.live_dsns())]
        ranks = [[list(rank_id), rank.state.value, rank.access_count]
                 for rank_id, rank in sorted(controller.device.ranks.items())]
        vms = [[vm.vm_id, vm.host_id, list(vm.au_ids)]
               for vm in sorted(controller.live_vms,
                                key=lambda vm: vm.vm_id)]
        extra = {}
        if controller.self_refresh is not None:
            bits = controller.self_refresh.access_bits
            extra["access_bits"] = hashlib.sha256(
                np.packbits(bits).tobytes()).hexdigest()
        document = {
            "clock_ns": self.clock_ns,
            "applied": self.applied,
            "audits": self.audits,
            "violations": list(self.violations),
            "counters": controller.metrics.counter_values(),
            "mapping": mapping,
            "ranks": ranks,
            "vms": vms,
            **extra,
        }
        return hashlib.sha256(json.dumps(
            document, sort_keys=True,
            separators=(",", ":")).encode()).hexdigest()

    # -- serialisation -----------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """Everything the checkpoint needs to resume this shard."""
        return {
            "controller": self.controller.state_dict(),
            "clock_ns": self.clock_ns,
            "applied": self.applied,
            "audits": self.audits,
            "violations": list(self.violations),
            "aborts_seen": self._aborts_seen,
        }

    def load_state_dict(self, state: dict[str, Any]) -> None:
        """Restore :meth:`state_dict` output (single-writer context).

        The shard must have been built with the same
        :class:`~repro.core.config.DtlConfig` and the same fault plan
        (armed iff the checkpoint was armed) — controller restore
        enforces both.
        """
        self.controller.load_state_dict(state["controller"])
        self.clock_ns = state["clock_ns"]
        self.applied = state["applied"]
        self.audits = state["audits"]
        self.violations = list(state["violations"])
        self._aborts_seen = state["aborts_seen"]


__all__ = ["shard_of", "TenantRecord", "ControllerShard"]
