"""Injected migration aborts at every progress counter.

Exhaustively aborts a segment copy at each progress 0..N on a tiny
geometry (16 cachelines per segment) and proves the abort path restores
the world exactly: mapping tables stay consistent, the migration-table
entry is rewound to a clean start, rank access counters and CLOCK
access bits are untouched, and the retried copy still lands.
"""

import pytest

from repro.core.checker import ConsistencyChecker, check
from repro.core.config import DtlConfig
from repro.core.controller import DtlController
from repro.dram.geometry import DramGeometry
from repro.faults.hooks import HookPoint
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, MigrationAbortFault

LINES_PER_SEGMENT = 16


def make_controller() -> DtlController:
    return DtlController(DtlConfig(
        geometry=DramGeometry(channels=2, ranks_per_channel=2,
                              rank_bytes=64 * 1024, segment_bytes=1024),
        au_bytes=2048))


def submit_one(controller):
    """Allocate one AU and submit a same-rank migration of its first segment."""
    vm = controller.allocate_vm(0, 2048)
    hsn = controller.host_layout.pack_hsn(0, vm.au_ids[0], 0)
    old_dsn = controller.tables.try_walk(hsn)
    rank = controller.allocator.rank_of_dsn(old_dsn)
    new_dsn = controller.allocator.allocate_in_rank(rank, 1)[0]
    request = controller.migration.submit(hsn, old_dsn, new_dsn)
    return hsn, old_dsn, new_dsn, request


def arm_abort(controller, progress):
    injector = FaultInjector(
        FaultPlan(specs=(MigrationAbortFault(at_lines_done=progress,
                                             max_fires=1),)),
        registry=controller.metrics, trace=controller.trace)
    controller.arm_faults(injector)
    return injector


class TestAbortMatrix:
    @pytest.mark.parametrize("progress", range(LINES_PER_SEGMENT))
    def test_abort_at_every_progress_counter(self, progress):
        controller = make_controller()
        hsn, old_dsn, new_dsn, request = submit_one(controller)
        injector = arm_abort(controller, progress)
        channel = controller.migration.channel_of(old_dsn)
        assert request.lines_total == LINES_PER_SEGMENT

        rank_counts = {rank_id: rank.access_count
                       for rank_id, rank in controller.device.ranks.items()}
        bits_before = controller.self_refresh.access_bits.copy()

        if progress:
            controller.migration.step_channel(channel, lines=progress)
        assert request.lines_done == progress
        controller.migration.step_channel(channel, lines=1)

        # The abort fired and rewound the request to a clean start.
        assert injector.injected(HookPoint.MIGRATION_COPY) == 1
        assert request.lines_done == 0
        assert not request.completion
        assert request.retries == 1
        assert controller.migration.request_for(old_dsn) is request

        # Nothing else moved: the aborted copy perturbs neither rank
        # access counters nor CLOCK bits, and every invariant holds.
        # The reserved destination puts one extra segment on its
        # channel, hence the balance tolerance of 1.
        assert rank_counts == {
            rank_id: rank.access_count
            for rank_id, rank in controller.device.ranks.items()}
        assert (bits_before == controller.self_refresh.access_bits).all()
        assert ConsistencyChecker(controller).audit(
            balance_tolerance=1).ok

        # The retry (fire cap reached) runs to completion.
        controller.migration.drain()
        assert controller.tables.try_walk(hsn) == new_dsn
        assert controller.migration.request_for(old_dsn) is None
        check(controller)

    def test_abort_at_full_progress_never_fires(self):
        # progress == N is unreachable: the completion bit is set in the
        # same step that copies the last line, and retirement precedes
        # the next hook consultation — an abort past the completion bit
        # would lose redirected foreground writes.
        controller = make_controller()
        hsn, old_dsn, new_dsn, request = submit_one(controller)
        injector = arm_abort(controller, LINES_PER_SEGMENT)
        channel = controller.migration.channel_of(old_dsn)
        controller.migration.step_channel(channel,
                                          lines=LINES_PER_SEGMENT)
        assert request.completion
        controller.migration.drain()
        assert injector.injected(HookPoint.MIGRATION_COPY) == 0
        assert injector.data_loss_events == 0
        assert controller.tables.try_walk(hsn) == new_dsn
        check(controller)

    def test_clock_bit_travels_on_retirement(self):
        controller = make_controller()
        hsn, old_dsn, new_dsn, request = submit_one(controller)
        controller.self_refresh.access_bits[old_dsn] = True
        arm_abort(controller, 7)
        controller.migration.drain()
        assert controller.tables.try_walk(hsn) == new_dsn
        assert controller.self_refresh.access_bits[new_dsn]
        assert not controller.self_refresh.access_bits[old_dsn]

    def test_repeated_aborts_requeue_and_still_land(self):
        controller = make_controller()
        hsn, old_dsn, new_dsn, request = submit_one(controller)
        fires = controller.migration.max_retries + 2
        injector = FaultInjector(
            FaultPlan(specs=(MigrationAbortFault(max_fires=fires),)),
            registry=controller.metrics, trace=controller.trace)
        controller.arm_faults(injector)
        controller.migration.drain()
        assert injector.injected(HookPoint.MIGRATION_COPY) == fires
        assert controller.migration.stats.requeues >= 1
        assert controller.tables.try_walk(hsn) == new_dsn
        check(controller)
