"""Top-level DTL configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.addressing import DEFAULT_AU_BYTES, DEFAULT_MAX_HOSTS
from repro.core.segment_cache import SegmentCacheConfig
from repro.core.self_refresh import (DEFAULT_PROFILING_THRESHOLD_NS,
                                     DEFAULT_TSP_SCAN_LIMIT, DEFAULT_WINDOW_NS)
from repro.dram.geometry import DramGeometry, PAPER_1TB_GEOMETRY
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DtlConfig:
    """Everything needed to instantiate a :class:`~repro.core.controller.DtlController`.

    Attributes:
        geometry: DRAM geometry behind the CXL controller.
        au_bytes: Allocation-unit size (2 GiB default).
        max_hosts: Hosts sharing the device (16, Table 5).
        cache: Segment mapping cache sizing.
        enable_power_down: Run the rank-level power-down policy.
        enable_self_refresh: Run the hotness-aware self-refresh policy.
        group_granularity: Rank-groups transitioned together (2 models the
            paper's CKE-pair constraint, Section 5.1).
        min_active_groups: Rank-groups that must always stay in standby.
        window_ns: Self-refresh access-count window (0.5 ms).
        profiling_threshold_ns: Quiet time required before migrating (50 ms).
        tsp_scan_limit: CLOCK-scan bound per TSP search.
        sr_victim_granularity: Ranks per self-refresh victim unit (2 models
            the CKE-pair constraint of the paper's testbed).
        policy: Registered policy driving victim selection, hotness
            prediction, and demotion depth for both power subsystems
            (see :func:`repro.policies.available_policies`; "paper" is
            the published behaviour).
    """

    geometry: DramGeometry = PAPER_1TB_GEOMETRY
    au_bytes: int = DEFAULT_AU_BYTES
    max_hosts: int = DEFAULT_MAX_HOSTS
    cache: SegmentCacheConfig = field(default_factory=SegmentCacheConfig)
    enable_power_down: bool = True
    enable_self_refresh: bool = True
    group_granularity: int = 1
    min_active_groups: int = 1
    window_ns: float = DEFAULT_WINDOW_NS
    profiling_threshold_ns: float = DEFAULT_PROFILING_THRESHOLD_NS
    tsp_scan_limit: int = DEFAULT_TSP_SCAN_LIMIT
    sr_victim_granularity: int = 1
    #: When True, consolidation copies use idle bandwidth granted through
    #: DtlController.pump_migrations(); MPSM entry waits for completion.
    background_migration: bool = False
    #: Ablation switch: False disables the CLOCK migration-table planner,
    #: so self-refresh relies on naturally quiet ranks only.
    sr_planning: bool = True
    policy: str = "paper"

    def __post_init__(self) -> None:
        if self.au_bytes % self.geometry.segment_bytes:
            raise ConfigurationError(
                "AU size must be a multiple of the segment size")
        segments_per_au = self.au_bytes // self.geometry.segment_bytes
        if segments_per_au % self.geometry.channels:
            raise ConfigurationError(
                "an AU must split evenly across channels")


__all__ = ["DtlConfig"]
