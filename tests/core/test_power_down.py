"""Tests for the rank-level power-down policy (Section 3.3)."""

import pytest

from repro.core.addressing import HostAddressLayout
from repro.core.allocator import SegmentAllocator
from repro.core.migration import MigrationEngine
from repro.core.power_down import RankPowerDownPolicy
from repro.core.tables import TranslationTables
from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.dram.power import PowerState
from repro.errors import AllocationError
from repro.policies import PolicyConfig
from repro.units import MIB


def make_stack(ranks_per_channel=4, group_granularity=1):
    geometry = DramGeometry(ranks_per_channel=ranks_per_channel,
                            rank_bytes=64 * MIB)  # 32 segments/rank
    device = DramDevice(geometry=geometry)
    allocator = SegmentAllocator(geometry)
    layout = HostAddressLayout(geometry, au_bytes=16 * MIB)
    tables = TranslationTables(layout)
    migration = MigrationEngine(geometry)

    def on_complete(request):
        tables.remap_segment(request.hsn, request.new_dsn)
        allocator.move_allocation(request.old_dsn, request.new_dsn)

    migration.on_complete = on_complete
    policy = RankPowerDownPolicy(
        device, allocator, tables, migration,
        PolicyConfig(group_granularity=group_granularity))
    return geometry, device, allocator, layout, tables, policy


def allocate(layout, tables, allocator, policy, au_id, host=0):
    """Allocate one AU worth of segments through the DTL structures."""
    tables.allocate_au(host, au_id)
    dsns = allocator.allocate(layout.segments_per_au,
                              policy.active_rank_ids())
    for offset, dsn in enumerate(dsns):
        tables.map_segment(layout.pack_hsn(host, au_id, offset), dsn)
    return dsns


def free(layout, tables, allocator, au_id, host=0):
    dsns = tables.free_au(host, au_id)
    allocator.free(dsns)


class TestPowerDown:
    def test_empty_device_powers_down_to_minimum(self):
        _, device, _, _, _, policy = make_stack()
        transitions = policy.maybe_power_down(0.0)
        assert policy.active_ranks_per_channel() == 1
        assert len(transitions) == 3
        counts = device.state_counts()
        assert counts[PowerState.MPSM] == 12

    def test_respects_min_active_groups(self):
        geometry, device, allocator, layout, tables, _ = make_stack()
        migration = MigrationEngine(geometry)
        policy = RankPowerDownPolicy(device, allocator, tables, migration,
                                     PolicyConfig(min_active_groups=2))
        policy.maybe_power_down(0.0)
        assert policy.active_ranks_per_channel() == 2

    def test_no_power_down_when_capacity_needed(self):
        geometry, device, allocator, layout, tables, policy = make_stack()
        # Fill almost everything: 3.5 ranks per channel.
        for au in range(28):  # 28 AUs x 8 segs = 224 of 512 segs... fill more
            allocate(layout, tables, allocator, policy, au)
        # 28 AUs x 16MiB = 448 MiB of 1 GiB: 224 segments of 512.
        transitions = policy.maybe_power_down(0.0)
        # Free space = 288 segs = 2.25 rank-groups: two groups power down.
        assert policy.active_ranks_per_channel() == 2
        assert len(transitions) == 2

    def test_victim_is_least_allocated(self):
        geometry, device, allocator, layout, tables, policy = make_stack()
        for au in range(4):
            allocate(layout, tables, allocator, policy, au)
        # Ranks 0 hold data; ranks 1-3 are empty -> they become victims.
        policy.maybe_power_down(0.0)
        for channel in range(4):
            assert device.rank(channel, 0).state is PowerState.STANDBY

    def test_consolidation_migrates_live_segments(self):
        geometry, device, allocator, layout, tables, policy = make_stack()
        # Spread data over two ranks per channel, then force consolidation.
        allocator_dsns = []
        for au in range(6):
            allocator_dsns += allocate(layout, tables, allocator, policy, au)
        # Free the first 4 AUs so rank 0 has holes and rank 1 is light.
        for au in range(4):
            free(layout, tables, allocator, au)
        transitions = policy.maybe_power_down(0.0)
        assert transitions
        migrated = sum(t.migrated_segments for t in transitions)
        # All remaining data fits in one rank per channel.
        assert policy.active_ranks_per_channel() == 1
        live = [tables.walk(layout.pack_hsn(0, au, off)).dsn
                for au in (4, 5) for off in range(layout.segments_per_au)]
        active = policy.active_rank_ids()
        assert all(allocator.rank_of_dsn(dsn) in active for dsn in live)
        assert migrated >= 0

    def test_mappings_survive_consolidation(self):
        geometry, device, allocator, layout, tables, policy = make_stack()
        for au in range(6):
            allocate(layout, tables, allocator, policy, au)
        for au in range(4):
            free(layout, tables, allocator, au)
        policy.maybe_power_down(0.0)
        # Every HSN of the surviving AUs still walks to a live DSN.
        for au in (4, 5):
            for offset in range(layout.segments_per_au):
                hsn = layout.pack_hsn(0, au, offset)
                dsn = tables.walk(hsn).dsn
                assert tables.hsn_of_dsn(dsn) == hsn

    def test_pair_granularity(self):
        _, device, _, _, _, policy = make_stack(group_granularity=2)
        policy.maybe_power_down(0.0)
        assert policy.active_ranks_per_channel() == 2
        assert device.state_counts()[PowerState.MPSM] == 8


class TestReactivation:
    def test_ensure_capacity_wakes_groups(self):
        geometry, device, allocator, layout, tables, policy = make_stack()
        policy.maybe_power_down(0.0)
        assert policy.active_ranks_per_channel() == 1
        transitions = policy.ensure_capacity(
            2 * geometry.rank_group_segments, 10.0)
        assert policy.active_ranks_per_channel() >= 2
        assert all(t.new_state is PowerState.STANDBY for t in transitions)

    def test_ensure_capacity_noop_when_space_exists(self):
        _, _, _, _, _, policy = make_stack()
        assert policy.ensure_capacity(4, 0.0) == []

    def test_over_capacity_raises(self):
        geometry, _, _, _, _, policy = make_stack()
        with pytest.raises(AllocationError):
            policy.ensure_capacity(geometry.total_segments + 4, 0.0)

    def test_reactivation_pays_exit_penalty(self):
        _, _, _, _, _, policy = make_stack()
        policy.maybe_power_down(0.0)
        transitions = policy.ensure_capacity(10 ** 9 // (2 * MIB), 1.0)
        assert any(t.exit_penalty_ns > 0 for t in transitions)


class TestInvariants:
    def test_channel_balance_is_preserved(self):
        """Every channel always has the same number of active ranks."""
        geometry, device, allocator, layout, tables, policy = make_stack()
        for au in range(8):
            allocate(layout, tables, allocator, policy, au)
        for au in range(0, 8, 2):
            free(layout, tables, allocator, au)
        policy.maybe_power_down(0.0)
        counts = {channel: device.standby_ranks_per_channel(channel)
                  for channel in range(4)}
        assert len(set(counts.values())) == 1

    def test_mpsm_ranks_hold_no_data(self):
        geometry, device, allocator, layout, tables, policy = make_stack()
        for au in range(6):
            allocate(layout, tables, allocator, policy, au)
        for au in range(4):
            free(layout, tables, allocator, au)
        policy.maybe_power_down(0.0)
        for rank_id in policy.powered_down_ranks():
            assert allocator.usage(rank_id).allocated == 0
