"""Admission control: token buckets, quotas, and serialisation."""

from repro.server.admission import (AdmissionConfig, AdmissionController,
                                    TokenBucket)
from repro.server.protocol import ErrorCode


class TestTokenBucket:
    def test_burst_then_rate_limited(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, now_s=0.0)
        assert bucket.admit(0.0) == 0.0
        assert bucket.admit(0.0) == 0.0
        retry = bucket.admit(0.0)
        assert retry > 0.0  # empty: carries the wait, consumes nothing
        assert bucket.admit(retry) == 0.0  # refilled exactly on time

    def test_refill_is_capped_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=3.0, now_s=0.0)
        for _ in range(3):
            assert bucket.admit(1000.0) == 0.0
        assert bucket.admit(1000.0) > 0.0

    def test_clock_never_runs_backwards(self):
        bucket = TokenBucket(rate=1.0, burst=1.0, now_s=10.0)
        assert bucket.admit(10.0) == 0.0
        bucket.admit(5.0)  # stale timestamp earns no refill
        assert bucket.tokens == 0.0
        assert bucket.updated_s == 10.0

    def test_determinism_same_stream_same_decisions(self):
        stream = [(0.0, 1.0), (0.01, 2.0), (0.02, 1.0), (5.0, 1.0)]
        a = TokenBucket(rate=100.0, burst=2.0)
        b = TokenBucket(rate=100.0, burst=2.0)
        assert [a.admit(t, c) for t, c in stream] \
            == [b.admit(t, c) for t, c in stream]

    def test_state_round_trip(self):
        bucket = TokenBucket(rate=10.0, burst=5.0, now_s=1.0)
        bucket.admit(2.0, cost=3.0)
        clone = TokenBucket.from_state(bucket.state_dict())
        assert clone.state_dict() == bucket.state_dict()
        assert clone.admit(2.0, 3.0) == bucket.admit(2.0, 3.0)


class TestAdmissionController:
    def controller(self, **changes) -> AdmissionController:
        return AdmissionController(AdmissionConfig(**changes))

    def test_tenant_limit(self):
        admission = self.controller(max_tenants=2)
        assert admission.admit_open("a", 0.0) is None
        assert admission.admit_open("b", 0.0) is None
        rejection = admission.admit_open("c", 0.0)
        assert rejection.code is ErrorCode.TENANT_LIMIT
        # Re-attach of a registered tenant is always free.
        assert admission.admit_open("a", 0.0) is None

    def test_rate_limit_carries_retry_after(self):
        admission = self.controller(rate_per_s=10.0, burst=1.0)
        admission.admit_open("a", 0.0)
        assert admission.admit_request("a", 0.0) is None
        rejection = admission.admit_request("a", 0.0)
        assert rejection.code is ErrorCode.RATE_LIMITED
        assert rejection.retry_after_s > 0.0

    def test_unknown_tenant_is_rejected(self):
        rejection = self.controller().admit_request("ghost", 0.0)
        assert rejection.code is ErrorCode.UNKNOWN_TENANT

    def test_batch_cost_scales_with_accesses(self):
        admission = self.controller(batch_cost_divisor=256)
        assert admission.batch_cost(1) == 1.0
        assert admission.batch_cost(256) == 2.0
        assert admission.batch_cost(1024) == 5.0

    def test_quota_gate_and_release(self):
        admission = self.controller(quota_bytes=100)
        admission.admit_open("a", 0.0)
        assert admission.admit_reservation("a", 80) is None
        admission.reserve("a", 80)
        rejection = admission.admit_reservation("a", 30)
        assert rejection.code is ErrorCode.QUOTA_EXCEEDED
        admission.release("a", 50)
        assert admission.admit_reservation("a", 30) is None
        assert admission.reserved_bytes("a") == 30

    def test_forget_frees_the_slot(self):
        admission = self.controller(max_tenants=1)
        admission.admit_open("a", 0.0)
        admission.forget("a")
        assert admission.admit_open("b", 0.0) is None

    def test_state_round_trip(self):
        admission = self.controller(rate_per_s=10.0, burst=2.0)
        admission.admit_open("a", 0.0)
        admission.admit_request("a", 0.0)
        admission.reserve("a", 64)
        clone = self.controller(rate_per_s=10.0, burst=2.0)
        clone.load_state_dict(admission.state_dict())
        assert clone.state_dict() == admission.state_dict()
        assert clone.admit_request("a", 0.0) == \
            admission.admit_request("a", 0.0)
