"""Trace-driven simulation of hotness-aware self-refresh (Figure 14).

The paper replays mixed CloudSuite post-cache traces against a custom
simulator at a boosted rate (>30 GB/s, Section 5.2) for allocated-memory
points of 208/224/240 GB (6 active ranks per channel) and 304 GB (8
ranks).  This module reproduces the experiment at a scaled-down geometry
(capacity ratios are preserved — see ``SelfRefreshSimConfig``) with a
*windowed* drive: instead of replaying ~10^9 individual accesses, each
50 ms step samples, per segment, whether the segment was touched (Poisson,
from the workload mix's per-segment rate vector) and feeds the distinct
touched segments through the real
:class:`~repro.core.self_refresh.HotnessSelfRefreshPolicy` via its batch
interface.  Access *bits* are sampled at the hardware's 0.5 ms window so
the CLOCK planner sees the same bit density it would in hardware.

A crucial replay-boost effect is modelled explicitly: at >30 GB/s the
paper's 10 M-instruction coldness horizon is only ~0.3 ms of wall time,
so even "cold" resident data is touched occasionally.  The simulator
gives frozen segments a small constant touch rate
(``frozen_touch_rate_hz``); free segments are never touched.  This is
what makes high-utilisation configurations (240 GB) struggle to keep a
victim rank quiet, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import DtlConfig
from repro.core.controller import DtlController, VmHandle
from repro.dram.geometry import DramGeometry
from repro.dram.power import PowerState
from repro.sim.base import SeededConfig
from repro.units import CACHELINE_BYTES, GIB, MIB, NS_PER_MS, NS_PER_S
from repro.workloads.cloudsuite import PROFILES, TRACED_BENCHMARKS, TraceGenerator
from repro.workloads.drift import DriftConfig, DriftingWorkload


@dataclass(frozen=True)
class SelfRefreshSimConfig(SeededConfig):
    """Scaled self-refresh experiment.

    The default geometry is a 32 GiB device (4 channels x 8 ranks x
    1 GiB); the paper's 384 GB testbed maps onto it by preserving the
    allocated-capacity *ratios*: e.g. the paper's 208 GB of a 288 GB
    6-rank configuration becomes ``208/288 x 24 GiB``.

    Attributes:
        geometry: Scaled device geometry.
        allocated_bytes: Memory reserved by the workload VMs.
        workloads: Benchmark mix (one VM per entry).
        aggregate_bandwidth_gbs: Post-cache bandwidth of the whole mix,
            scaled from the paper's 30 GB/s by the capacity ratio.
        step_ns: Simulation step; also the profiling-threshold default.
        duration_s: Simulated wall time.
        frozen_touch_rate_hz: Touch rate of each frozen (cold-resident)
            segment under replay boost.
        seed: RNG seed.
    """

    geometry: DramGeometry = field(
        default_factory=lambda: DramGeometry(rank_bytes=1 * GIB))
    allocated_bytes: int = int(208 / 288 * 24) * GIB
    workloads: tuple[str, ...] = TRACED_BENCHMARKS[:6]
    aggregate_bandwidth_gbs: float = 2.5
    step_ns: float = 50 * NS_PER_MS
    window_ns: float = 0.5 * NS_PER_MS
    duration_s: float = 90.0
    frozen_touch_rate_hz: float = 8.0
    au_bytes: int = 512 * MIB
    group_granularity: int = 2
    #: Optional hot-set drift (None = the paper's stable-pattern regime).
    drift: "DriftConfig | None" = None
    #: Ablation: disable the CLOCK migration-table planner.
    sr_planning: bool = True
    #: "scatter" places allocated segments uniformly over the active ranks
    #: (the paper's simulator "randomly mixes" traces over the allocated
    #: memory); "pack" keeps the DTL allocator's most-utilised-first layout.
    placement: str = "scatter"
    #: Registered policy name driving victim selection / cold search /
    #: demotion depth (see repro.policies.available_policies()).
    policy: str = "paper"
    seed: int = 0


@dataclass
class StepRecord:
    """Per-step power sample."""

    time_s: float
    sr_ranks: int
    background_power: float
    migration_power: float

    @property
    def total_power(self) -> float:
        """Background plus migration power for the step (RSU)."""
        return self.background_power + self.migration_power


@dataclass
class SelfRefreshResult:
    """Outcome of one self-refresh simulation."""

    config: SelfRefreshSimConfig
    steps: list[StepRecord]
    baseline_power: float
    active_ranks_per_channel: int
    warmup_s: float
    stable_savings: float
    mean_savings: float
    sr_entries: int
    sr_exits: int
    migrated_bytes: int
    ever_stable: bool
    #: Cumulative SR wake penalty the accesses paid (policy counter view);
    #: the tournament's performance-overhead axis reads this.
    exit_penalty_ns: float = 0.0

    def savings_timeseries(self) -> tuple[np.ndarray, np.ndarray]:
        """(time_s, fractional savings) samples — the Figure 14 curves."""
        times = np.array([step.time_s for step in self.steps])
        savings = np.array([1.0 - step.total_power / self.baseline_power
                            for step in self.steps])
        return times, savings

    def to_record(self):
        """Flatten into an :class:`~repro.sim.results.ExperimentRecord`."""
        from repro.sim.results import ExperimentRecord, flatten_selfrefresh
        return ExperimentRecord("selfrefresh", flatten_selfrefresh(self))


@dataclass
class SelfRefreshRunState:
    """Everything the step loop carries between steps.

    Picklable as one graph: the RNG is shared between the state and the
    drifters, and the controller graph keeps its internal sharing, so a
    ``pickle`` round-trip of the whole state resumes bit-identically.
    ``num_steps`` lives here (not on the config) so a warm-start fork can
    retarget a prefix snapshot at a longer duration.
    """

    rng: np.random.Generator
    controller: DtlController
    handles: list[VmHandle]
    hsns: np.ndarray
    generators: list[TraceGenerator]
    rates_hz: np.ndarray
    drifters: list[DriftingWorkload]
    dsns: np.ndarray
    step_s: float
    p_touch: np.ndarray
    p_bit: np.ndarray
    active_per_channel: int
    baseline_power: float
    active_power: float
    steps: list[StepRecord]
    num_steps: int
    migrated_before: int = 0
    step: int = 0


class SelfRefreshSimulator:
    """Windowed trace-driven driver for the hotness-aware SR policy."""

    name = "selfrefresh"

    def __init__(self, config: SelfRefreshSimConfig | None = None):
        self.config = config or SelfRefreshSimConfig()

    # -- setup -----------------------------------------------------------------

    def _build_controller(self) -> tuple[DtlController, list[VmHandle]]:
        config = self.config
        controller = DtlController(DtlConfig(
            geometry=config.geometry,
            au_bytes=config.au_bytes,
            enable_power_down=True,
            enable_self_refresh=True,
            group_granularity=config.group_granularity,
            profiling_threshold_ns=config.step_ns,
            window_ns=config.window_ns,
            sr_victim_granularity=config.group_granularity,
            sr_planning=config.sr_planning,
            policy=config.policy))
        total_aus = config.allocated_bytes // config.au_bytes
        if total_aus < len(config.workloads):
            raise ValueError("allocated_bytes too small for the mix")
        # Distribute AUs as evenly as possible so the total matches the
        # experiment's capacity point exactly.
        base_aus, extra = divmod(total_aus, len(config.workloads))
        handles = []
        for index in range(len(config.workloads)):
            aus = base_aus + (1 if index < extra else 0)
            handles.append(controller.allocate_vm(0, aus * config.au_bytes))
        # Consolidate: the rank-level power-down policy decides how many
        # rank groups stay active for this allocation (Section 6.3 runs SR
        # *after* power-down).
        assert controller.power_down is not None
        controller.power_down.maybe_power_down(0.0)
        if config.placement == "scatter":
            self._scatter(controller)
        elif config.placement != "pack":
            raise ValueError(f"unknown placement {config.placement!r}")
        return controller, handles

    def _scatter(self, controller: DtlController) -> None:
        """Randomly redistribute allocated segments over the active ranks.

        Mirrors the paper's methodology: the simulator "randomly mixes the
        post-cache traces with allocated memory" rather than using the
        packed layout a long-running DTL would converge to.  Channel
        balance is preserved (segments are shuffled within each channel).
        """
        config = self.config
        rng = np.random.default_rng(config.seed + 1)
        allocator = controller.allocator
        tables = controller.tables
        assert controller.power_down is not None
        active = controller.power_down.active_rank_ids()
        for channel in range(config.geometry.channels):
            channel_ranks = [rank_id for rank_id in active
                             if rank_id[0] == channel]
            live_dsns: list[int] = []
            slots: list[int] = []
            for rank_id in channel_ranks:
                live = allocator.allocated_in_rank(rank_id)
                live_dsns.extend(live)
                slots.extend(live)
                slots.extend(allocator.free_dsns_in_rank(rank_id))
            chosen = rng.choice(len(slots), size=len(live_dsns),
                                replace=False)
            new_dsns = [slots[index] for index in chosen]
            hsns = [tables.hsn_of_dsn(dsn) for dsn in live_dsns]
            # Two-phase remap through a shadow space to avoid collisions.
            for hsn in hsns:
                tables.unmap_segment(hsn)
            for rank_id in channel_ranks:
                allocator.free(allocator.allocated_in_rank(rank_id))
            for hsn, dsn in zip(hsns, new_dsns):
                allocator.reserve_specific(dsn)
                tables.map_segment(hsn, dsn)

    def _build_workloads(self, controller: DtlController,
                         handles: list[VmHandle],
                         rng: np.random.Generator,
                         ) -> tuple[np.ndarray, list[TraceGenerator]]:
        """Instantiate one generator per VM and the covered HSN list."""
        config = self.config
        layout = controller.host_layout
        segments_per_au = layout.segments_per_au
        hsns: list[int] = []
        generators: list[TraceGenerator] = []
        for handle, workload in zip(handles, config.workloads):
            generator = TraceGenerator(PROFILES[workload],
                                       footprint_bytes=handle.reserved_bytes,
                                       seed=rng)
            generators.append(generator)
            for index in range(generator.num_segments):
                au_id = handle.au_ids[index // segments_per_au]
                au_offset = index % segments_per_au
                hsns.append(layout.pack_hsn(handle.host_id, au_id, au_offset))
        return np.asarray(hsns, dtype=np.int64), generators

    def _rates_hz(self, generators: list[TraceGenerator]) -> np.ndarray:
        """Per-VM-segment touch rates under the replay boost."""
        config = self.config
        total_access_rate = (config.aggregate_bandwidth_gbs * 1e9
                             / CACHELINE_BYTES)
        per_vm_rate = total_access_rate / len(generators)
        rates: list[np.ndarray] = []
        for generator in generators:
            seg_rates = generator.segment_access_rates() * per_vm_rate
            # Shallow-frozen segments: at the boosted replay rate, even
            # nominally cold data is touched occasionally; only the
            # deep-cold tier stays quiet.
            seg_rates[generator.shallow_frozen_segments] = \
                config.frozen_touch_rate_hz
            seg_rates[generator.deep_cold_segments] = 0.0
            rates.append(seg_rates)
        return np.concatenate(rates)

    def _segment_rates(self, controller: DtlController,
                       handles: list[VmHandle],
                       rng: np.random.Generator,
                       ) -> tuple[np.ndarray, np.ndarray]:
        """Per-VM-segment rate vector and its HSN list."""
        hsns, generators = self._build_workloads(controller, handles, rng)
        return hsns, self._rates_hz(generators)

    def _dsn_of(self, controller: DtlController,
                hsns: np.ndarray) -> np.ndarray:
        return controller.tables.walk_batch(np.asarray(hsns,
                                                       dtype=np.int64))

    # -- run -------------------------------------------------------------------

    def begin(self) -> SelfRefreshRunState:
        """Build the controller, workloads, and rate vectors; step 0 state."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        controller, handles = self._build_controller()
        assert controller.self_refresh is not None
        device = controller.device
        power_model = device.power_model

        hsns, generators = self._build_workloads(controller, handles, rng)
        rates_hz = self._rates_hz(generators)
        drifters: list[DriftingWorkload] = []
        if config.drift is not None:
            drifters = [DriftingWorkload.wrap(generator, config.drift, rng)
                        for generator in generators]
        dsns = self._dsn_of(controller, hsns)
        step_s = config.step_ns / NS_PER_S
        p_touch = 1.0 - np.exp(-rates_hz * step_s)
        p_bit = 1.0 - np.exp(-rates_hz * (config.window_ns / NS_PER_S))

        active_per_channel = device.standby_ranks_per_channel(0)
        baseline_counts = device.state_counts()
        baseline_power = (power_model.background_power(baseline_counts)
                          + power_model.active_power(
                              config.aggregate_bandwidth_gbs))
        active_power = power_model.active_power(config.aggregate_bandwidth_gbs)
        return SelfRefreshRunState(
            rng=rng, controller=controller, handles=handles, hsns=hsns,
            generators=generators, rates_hz=rates_hz, drifters=drifters,
            dsns=dsns, step_s=step_s, p_touch=p_touch, p_bit=p_bit,
            active_per_channel=active_per_channel,
            baseline_power=baseline_power, active_power=active_power,
            steps=[], num_steps=int(config.duration_s / step_s))

    def advance(self, state: SelfRefreshRunState) -> bool:
        """Simulate one step if any remain; True while more remain after."""
        if state.step >= state.num_steps:
            return False
        config = self.config
        controller = state.controller
        policy = controller.self_refresh
        assert policy is not None
        device = controller.device
        power_model = device.power_model

        step = state.step
        now_ns = (step + 1) * config.step_ns
        if state.drifters:
            drifted = sum(d.advance_to(now_ns / NS_PER_S)
                          for d in state.drifters)
            if drifted:
                state.rates_hz = self._rates_hz(state.generators)
                state.p_touch = 1.0 - np.exp(-state.rates_hz * state.step_s)
                state.p_bit = 1.0 - np.exp(
                    -state.rates_hz * (config.window_ns / NS_PER_S))
        touched_mask = state.rng.random(len(state.dsns)) < state.p_touch
        bit_mask = touched_mask & (state.rng.random(len(state.dsns)) < (
            state.p_bit / np.maximum(state.p_touch, 1e-12)))
        policy.on_batch(state.dsns[touched_mask], now_ns,
                        bit_dsns=state.dsns[bit_mask])
        policy.end_window()
        events = policy.tick(now_ns)
        if events:
            state.dsns = self._dsn_of(controller, state.hsns)
        # A wake mid-batch can also remap at the *next* SR entry; track
        # migrations via the policy's byte counter instead.
        migrated_now = policy.migrated_bytes_total
        step_migrated = migrated_now - state.migrated_before
        state.migrated_before = migrated_now
        if step_migrated:
            state.dsns = self._dsn_of(controller, state.hsns)
        counts = device.state_counts()
        background = power_model.background_power(counts)
        migration_energy = (power_model.active_power_per_gbs
                            * step_migrated / 1e9)
        migration_power = migration_energy / state.step_s
        state.steps.append(StepRecord(
            time_s=step * state.step_s,
            sr_ranks=counts[PowerState.SELF_REFRESH],
            background_power=background + state.active_power,
            migration_power=migration_power))
        state.step += 1
        return state.step < state.num_steps

    def finish(self, state: SelfRefreshRunState) -> SelfRefreshResult:
        """Summarise a fully-advanced state into the experiment result."""
        return self._summarise(state.controller, state.steps,
                               state.baseline_power, state.active_per_channel)

    def run(self) -> SelfRefreshResult:
        """Simulate ``duration_s`` of replay; returns savings trajectories.

        Implemented as ``finish(drive(begin()))`` so the stepped path
        and the one-shot path are the same code — a run resumed from a
        mid-flight checkpoint is bit-identical by construction.
        """
        state = self.begin()
        while self.advance(state):
            pass
        return self.finish(state)

    def _summarise(self, controller: DtlController, steps: list[StepRecord],
                   baseline_power: float,
                   active_per_channel: int) -> SelfRefreshResult:
        policy = controller.self_refresh
        assert policy is not None
        savings = np.array([1.0 - step.total_power / baseline_power
                            for step in steps])
        times = np.array([step.time_s for step in steps])
        # Stable phase: the trailing third of the run.
        tail = max(1, len(steps) // 3)
        stable = float(savings[-tail:].mean())
        mean = float(savings.mean())
        # Warmup: first time the savings reach 90 % of the stable level
        # (inf when the run never stabilises above zero).
        warmup_s = float("inf")
        ever_stable = stable > 0.01
        if ever_stable:
            threshold = 0.9 * stable
            reached = np.nonzero(savings >= threshold)[0]
            if len(reached):
                warmup_s = float(times[reached[0]])
        entries = sum(1 for event in policy.events if event.kind == "enter_sr")
        exits = sum(1 for event in policy.events if event.kind == "exit_sr")
        return SelfRefreshResult(
            config=self.config, steps=steps, baseline_power=baseline_power,
            active_ranks_per_channel=active_per_channel,
            warmup_s=warmup_s, stable_savings=stable, mean_savings=mean,
            sr_entries=entries, sr_exits=exits,
            migrated_bytes=policy.migrated_bytes_total,
            ever_stable=ever_stable,
            exit_penalty_ns=policy.exit_penalty_total_ns)


#: The paper's Figure 14 capacity points, as fractions of the 8-rank
#: capacity (their 384 GB testbed; 288 GB when 6 of 8 ranks are active).
PAPER_CAPACITY_POINTS = {
    "208gb": 208 / 384,
    "224gb": 224 / 384,
    "240gb": 240 / 384,
    "304gb": 304 / 384,
}


def config_for_point(point: str, seed: int = 0,
                     workloads: tuple[str, ...] | None = None,
                     duration_s: float = 90.0) -> SelfRefreshSimConfig:
    """Build the scaled config for one Figure 14 capacity point."""
    if point not in PAPER_CAPACITY_POINTS:
        raise KeyError(f"unknown point {point!r}; "
                       f"choices: {sorted(PAPER_CAPACITY_POINTS)}")
    geometry = DramGeometry(rank_bytes=1 * GIB)
    fraction = PAPER_CAPACITY_POINTS[point]
    allocated = int(fraction * geometry.total_bytes)
    allocated -= allocated % (512 * MIB)
    bandwidth = 30.0 * geometry.total_bytes / (384 * GIB)
    return SelfRefreshSimConfig(
        geometry=geometry,
        allocated_bytes=allocated,
        workloads=workloads or TRACED_BENCHMARKS[:6],
        aggregate_bandwidth_gbs=bandwidth,
        duration_s=duration_s,
        seed=seed)


__all__ = [
    "SelfRefreshSimConfig",
    "StepRecord",
    "SelfRefreshResult",
    "SelfRefreshRunState",
    "SelfRefreshSimulator",
    "PAPER_CAPACITY_POINTS",
    "config_for_point",
]
