"""Table 6: CXL controller power and area at 7 nm.

Paper: 25.7 mW / 0.165 mm^2 for the 384 GB device and 36.2 mW / 1.1 mm^2
for 4 TB, normalised from a 40 nm synthesis (0.8 W, 5.4 mm^2) with
(technology)^2 scaling.
"""

import pytest

from repro.analysis.area_power import (CONTROLLER_384GB, CONTROLLER_4TB,
                                       PAPER_TABLE6_384GB, PAPER_TABLE6_4TB,
                                       sanity_check_40nm_scaling)

from conftest import report


def compute():
    return CONTROLLER_384GB.report(), CONTROLLER_4TB.report()


def test_tab06_breakdown(benchmark):
    small, large = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        ("SMC power", f"{small['smc_mw']:.1f} (1.7)",
         f"{large['smc_mw']:.1f} (2.1)"),
        ("SRAM power", f"{small['sram_mw']:.1f} (2.9)",
         f"{large['sram_mw']:.1f} (13.0)"),
        ("CPU power", f"{small['cpu_mw']:.1f} (21.2)",
         f"{large['cpu_mw']:.1f} (21.2)"),
        ("total mW", f"{small['total_mw']:.1f} (25.7)",
         f"{large['total_mw']:.1f} (36.2)"),
        ("total mm2", f"{small['total_mm2']:.3f} (0.165)",
         f"{large['total_mm2']:.3f} (1.1)"),
    ]
    report("Table 6: controller power/area @7nm, measured (paper)", rows,
           header=("row", "384GB", "4TB"))
    for key in ("smc_mw", "sram_mw", "cpu_mw", "total_mw"):
        assert small[key] == pytest.approx(PAPER_TABLE6_384GB[key], rel=0.15)
        assert large[key] == pytest.approx(PAPER_TABLE6_4TB[key], rel=0.15)
    assert small["total_mm2"] == pytest.approx(
        PAPER_TABLE6_384GB["total_mm2"], rel=0.2)
    assert large["total_mm2"] == pytest.approx(
        PAPER_TABLE6_4TB["total_mm2"], rel=0.2)


def test_tab06_40nm_crosscheck(benchmark):
    power_mw, area_mm2 = benchmark.pedantic(sanity_check_40nm_scaling,
                                            rounds=1, iterations=1)
    report("Section 6.5: 40nm synthesis scaled to 7nm", [
        ("power", f"{power_mw:.1f} mW", "(~25.7 mW)"),
        ("area", f"{area_mm2:.3f} mm2", "(0.165 mm2)"),
    ], header=("metric", "measured", "paper"))
    assert power_mw == pytest.approx(25.7, rel=0.1)
    assert area_mm2 == pytest.approx(0.165, rel=0.05)


def test_tab06_deployability_claim():
    """Section 6.6: tens of mW and ~1 mm^2 make terabyte-scale DTL
    practical — the controller stays below 50 mW and 2 mm^2."""
    assert CONTROLLER_4TB.total_power_mw() < 50.0
    assert CONTROLLER_4TB.total_area_mm2() < 2.0
