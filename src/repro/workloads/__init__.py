"""Workload substrate: Azure-like VM traces and CloudSuite-like memory traces."""

from repro.workloads.azure import AzureTraceConfig, generate_vm_trace
from repro.workloads.drift import DriftConfig, DriftingWorkload
from repro.workloads.cloudsuite import (PROFILES, SEGMENT_BYTES,
                                        STRIDE_BUCKET_EDGES,
                                        TRACED_BENCHMARKS, TraceGenerator,
                                        WorkloadProfile, make_trace)
from repro.workloads.trace import Trace, concatenate, mix
from repro.workloads.validation import (ValidationReport, WorkloadCheck,
                                        check_workload, validate_workloads)

__all__ = [
    "DriftConfig",
    "DriftingWorkload",
    "AzureTraceConfig",
    "generate_vm_trace",
    "PROFILES",
    "SEGMENT_BYTES",
    "STRIDE_BUCKET_EDGES",
    "TRACED_BENCHMARKS",
    "TraceGenerator",
    "WorkloadProfile",
    "make_trace",
    "Trace",
    "ValidationReport",
    "WorkloadCheck",
    "check_workload",
    "validate_workloads",
    "concatenate",
    "mix",
]
