"""Figure 6: DRAM physical address bit mapping of the 1 TB device.

Structural reproduction: rank bits as most-significant bits (no rank
interleaving), channel bits interleaved at segment granularity, and the
full DPA covering the 1 TB device.
"""

from repro.core.addressing import DeviceAddressLayout, SegmentLocation
from repro.dram.geometry import PAPER_1TB_GEOMETRY

from conftest import report


def build_layout():
    return DeviceAddressLayout(PAPER_1TB_GEOMETRY)


def test_fig06_bit_layout(benchmark):
    layout = benchmark.pedantic(build_layout, rounds=1, iterations=1)
    geo = layout.geometry
    report("Figure 6: 1 TB device DPA bit layout", [
        ("segment offset", f"bits 0..{geo.segment_offset_bits - 1}",
         "21 bits (2 MB)"),
        ("channel", f"bits {geo.segment_offset_bits}.."
         f"{geo.segment_offset_bits + geo.channel_bits - 1}",
         "2 bits (4 ch)"),
        ("segment index", f"{geo.segment_index_bits} bits", ""),
        ("rank", f"top {geo.rank_bits} bits", "3 bits (8 ranks)"),
    ], header=("field", "measured", "paper"))
    assert geo.segment_offset_bits == 21
    assert geo.channel_bits == 2
    assert geo.rank_bits == 3
    assert geo.dpa_bits == 40


def test_fig06_channel_interleaving_at_segment_granularity():
    layout = build_layout()
    channels = [layout.channel_of_dsn(dsn) for dsn in range(8)]
    assert channels == [0, 1, 2, 3, 0, 1, 2, 3]


def test_fig06_rank_bits_most_significant():
    """A rank's segments occupy one contiguous top-level DSN block, so a
    whole rank can idle without fragmenting the address space."""
    layout = build_layout()
    geo = layout.geometry
    block = geo.total_segments // geo.ranks_per_channel
    for rank in range(geo.ranks_per_channel):
        first = layout.pack_dsn(SegmentLocation(0, rank, 0))
        last = layout.pack_dsn(SegmentLocation(
            geo.channels - 1, rank, geo.segments_per_rank - 1))
        assert first // block == rank
        assert last // block == rank
