"""Figure 1: memory usage of an Azure-like VM schedule.

Paper: 400 VMs sampled from the Azure dataset, scheduled for six hours on
a 48-vCPU / 384 GB node, show *average memory capacity usage below 50 %*.
"""

import numpy as np

from repro.host.scheduler import VmScheduler
from repro.workloads.azure import generate_vm_trace

from conftest import report


def run_schedule(seed: int = 0):
    return VmScheduler().run(generate_vm_trace(seed=seed))


def test_fig01_average_usage_below_half(benchmark):
    result = benchmark.pedantic(run_schedule, rounds=1, iterations=1)
    fractions = [sample.memory_fraction(result.config.memory_bytes)
                 for sample in result.samples]
    mean = float(np.mean(fractions))
    peak = float(np.max(fractions))
    rows = [(f"{5 * index:4d} min", f"{fractions[index]:.1%}")
            for index in range(0, len(fractions), 12)]
    rows.append(("mean", f"{mean:.1%} (paper: <50%)"))
    rows.append(("peak", f"{peak:.1%}"))
    report("Figure 1: Azure VM schedule memory usage", rows,
           header=("time", "usage"))
    # Shape: utilisation is low on average but the node is far from empty.
    assert mean < 0.55
    assert 0.25 < mean
    assert peak < 1.0


def test_fig01_usage_varies_over_time():
    result = run_schedule(seed=1)
    values = np.array([sample.memory_bytes for sample in result.samples],
                      dtype=float)
    # The schedule breathes: the spread is a sizable share of the mean.
    assert values.std() > 0.1 * values.mean()
