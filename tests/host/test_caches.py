"""Tests for the host cache hierarchy simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.host.caches import (CacheHierarchy, CacheLevel, CacheLevelConfig,
                               PAPER_CACHE_LEVELS)
from repro.units import CACHELINE_BYTES, KIB, MIB


def tiny_hierarchy():
    """A hierarchy small enough to force evictions quickly."""
    return CacheHierarchy((
        CacheLevelConfig("L1", 4 * CACHELINE_BYTES, 2),
        CacheLevelConfig("L2", 16 * CACHELINE_BYTES, 2),
    ))


class TestLevelConfig:
    def test_paper_table3(self):
        l1, l2, llc = PAPER_CACHE_LEVELS
        assert (l1.size_bytes, l1.ways) == (32 * KIB, 8)
        assert (l2.size_bytes, l2.ways) == (1 * MIB, 8)
        assert (llc.size_bytes, llc.ways) == (8 * MIB, 16)

    def test_num_sets(self):
        assert PAPER_CACHE_LEVELS[0].num_sets == 64

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            CacheLevelConfig("bad", 100, 3)


class TestCacheLevel:
    def test_hit_after_fill(self):
        level = CacheLevel(CacheLevelConfig("L1", 4 * 64, 2))
        level.fill(10, dirty=False)
        assert level.access(10, is_write=False)
        assert level.stats.hits == 1

    def test_dirty_eviction_counts_writeback(self):
        level = CacheLevel(CacheLevelConfig("L1", 2 * 64, 2))
        level.fill(0, dirty=True)
        level.fill(2, dirty=False)
        victim = level.fill(4, dirty=False)  # evicts line 0 (dirty)
        assert victim == (0, True)
        assert level.stats.writebacks == 1

    def test_write_sets_dirty(self):
        level = CacheLevel(CacheLevelConfig("L1", 2 * 64, 2))
        level.fill(0, dirty=False)
        level.access(0, is_write=True)
        _, dirty = level.invalidate(0)
        assert dirty

    def test_invalidate_missing(self):
        level = CacheLevel(CacheLevelConfig("L1", 2 * 64, 2))
        assert level.invalidate(5) == (False, False)


class TestHierarchy:
    def test_first_access_misses_to_memory(self):
        hierarchy = tiny_hierarchy()
        requests = hierarchy.access(0, is_write=False)
        assert len(requests) == 1
        assert not requests[0].is_write

    def test_second_access_filtered(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0, is_write=False)
        assert hierarchy.access(0, is_write=False) == []

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = tiny_hierarchy()
        # L1 has 2 sets x 2 ways; lines 0, 2, 4 collide in set 0.
        for line in (0, 2, 4):
            hierarchy.access(line * 64, is_write=False)
        requests = hierarchy.access(0, is_write=False)
        assert requests == []  # still in L2

    def test_dirty_llc_eviction_writes_back(self):
        hierarchy = CacheHierarchy((
            CacheLevelConfig("L1", 2 * 64, 2),
            CacheLevelConfig("LLC", 2 * 64, 2),
        ))
        hierarchy.access(0, is_write=True)
        writebacks = []
        # Touch enough conflicting lines to force line 0 out of the LLC.
        for line in (2, 4, 6, 8):
            writebacks += [r for r in hierarchy.access(line * 64, False)
                           if r.is_write]
        assert any(r.line_addr == 0 for r in writebacks)

    def test_inclusion_back_invalidates(self):
        hierarchy = CacheHierarchy((
            CacheLevelConfig("L1", 4 * 64, 4),
            CacheLevelConfig("LLC", 2 * 64, 2),
        ))
        hierarchy.access(0, is_write=False)
        # Evict line 0 from the (smaller) LLC; inclusion forces it out of L1.
        hierarchy.access(2 * 64, is_write=False)
        hierarchy.access(4 * 64, is_write=False)
        assert len(hierarchy.levels[0]._sets[0]) <= 2
        requests = hierarchy.access(0, is_write=False)
        assert len(requests) == 1  # full miss: line really left L1 too

    def test_memory_request_address(self):
        hierarchy = tiny_hierarchy()
        requests = hierarchy.access(3 * 64 + 17, is_write=False)
        assert requests[0].address == 3 * 64

    def test_stats_by_name(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0, is_write=False)
        stats = hierarchy.stats()
        assert stats["L1"].misses == 1
        assert stats["L2"].misses == 1

    def test_llc_miss_ratio(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0, is_write=False)
        hierarchy.access(0, is_write=False)
        assert hierarchy.llc_miss_ratio() == pytest.approx(1.0)

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy(())

    @given(st.lists(st.tuples(st.integers(0, 63), st.booleans()),
                    min_size=1, max_size=300))
    @settings(max_examples=20, deadline=None)
    def test_filtering_never_amplifies_reads(self, accesses):
        """Post-cache demand-read traffic never exceeds host reads."""
        hierarchy = tiny_hierarchy()
        demand = 0
        for line, is_write in accesses:
            requests = hierarchy.access(line * 64, is_write)
            demand += sum(1 for r in requests if not r.is_write)
        assert demand <= len(accesses)
