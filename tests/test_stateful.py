"""Stateful property-based testing of the DTL controller.

A hypothesis rule-based state machine drives random interleavings of VM
allocation, deallocation, memory accesses, time ticks, and rank
retirement, and audits every cross-structure invariant after each step
via :mod:`repro.core.checker`.
"""

import numpy as np
from hypothesis import settings, strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, initialize,
                                 invariant, precondition, rule)

from repro.core.checker import ConsistencyChecker
from repro.core.config import DtlConfig
from repro.core.controller import DtlController
from repro.dram.geometry import DramGeometry
from repro.errors import AllocationError, PowerStateError
from repro.units import MIB


class DtlMachine(RuleBasedStateMachine):
    """Random controller workloads with invariant audits after each rule."""

    @initialize()
    def setup(self):
        self.controller = DtlController(DtlConfig(
            geometry=DramGeometry(channels=2, ranks_per_channel=4,
                                  rank_bytes=64 * MIB),
            au_bytes=16 * MIB,
            profiling_threshold_ns=1e6))
        self.checker = ConsistencyChecker(self.controller)
        self.vms = []
        self.clock_s = 0.0
        self.clock_ns = 0.0
        self.retired = 0

    def _advance(self, seconds: float = 1.0):
        self.clock_s += seconds
        self.clock_ns += seconds * 1e9

    @rule(host=st.integers(0, 3), aus=st.integers(1, 6))
    def allocate(self, host, aus):
        self._advance()
        try:
            vm = self.controller.allocate_vm(host, aus * 16 * MIB,
                                             now_s=self.clock_s)
            self.vms.append(vm)
        except AllocationError:
            pass  # device full: legitimate

    @precondition(lambda self: self.vms)
    @rule(index=st.integers(0, 10 ** 6))
    def deallocate(self, index):
        self._advance()
        vm = self.vms.pop(index % len(self.vms))
        self.controller.deallocate_vm(vm, now_s=self.clock_s)

    @precondition(lambda self: self.vms)
    @rule(index=st.integers(0, 10 ** 6), offset=st.integers(0, 10 ** 6),
          is_write=st.booleans())
    def access(self, index, offset, is_write):
        vm = self.vms[index % len(self.vms)]
        layout = self.controller.host_layout
        au = vm.au_ids[offset % len(vm.au_ids)]
        au_offset = offset % layout.segments_per_au
        self.controller.access(vm.host_id,
                               self.controller.hpa_of(au, au_offset),
                               is_write=is_write, now_ns=self.clock_ns)

    @rule()
    def tick(self):
        self._advance(0.01)
        self.controller.end_window()
        self.controller.tick(now_ns=self.clock_ns)

    @precondition(lambda self: self.retired < 2)
    @rule(channel=st.integers(0, 1), rank=st.integers(0, 3))
    def retire(self, channel, rank):
        self._advance()
        try:
            self.controller.retire_rank(channel, rank, now_s=self.clock_s)
            self.retired += 1
        except (AllocationError, PowerStateError):
            pass  # already retired, or no room to evacuate

    @invariant()
    def consistent(self):
        if not hasattr(self, "controller"):
            return
        # Self-refresh migration and retirement legitimately skew channel
        # balance by a few segments; conservation/mapping/SMC/MPSM
        # invariants must hold exactly.
        self.checker.assert_consistent(balance_tolerance=10 ** 9)

    @invariant()
    def balance_within_reason(self):
        if not hasattr(self, "controller") or self.retired:
            return
        allocator = self.controller.allocator
        counts = [allocator.channel_allocated(channel)
                  for channel in range(2)]
        assert max(counts) - min(counts) <= 2


TestDtlStateMachine = DtlMachine.TestCase
TestDtlStateMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)
