"""Tests for the combined Figure 15 summary."""

import pytest

from repro.sim.combined import CombinedSavings, combined_savings


@pytest.fixture(scope="module")
def point_208():
    return combined_savings("208gb", duration_s=15.0)


class TestCombined:
    def test_components_sum(self, point_208):
        assert point_208.total_savings == pytest.approx(
            point_208.powerdown_savings
            + point_208.selfrefresh_additional, abs=1e-9)

    def test_six_rank_configuration(self, point_208):
        assert point_208.active_ranks_per_channel == 6
        assert point_208.powerdown_savings > 0.1

    def test_row_rendering(self, point_208):
        text = point_208.row()
        assert "208gb" in text
        assert "total" in text

    def test_unknown_point(self):
        with pytest.raises(KeyError):
            combined_savings("512gb", duration_s=5.0)

    def test_eight_rank_has_no_powerdown(self):
        result = combined_savings("304gb", duration_s=10.0)
        assert result.active_ranks_per_channel == 8
        assert result.powerdown_savings == pytest.approx(0.0)
