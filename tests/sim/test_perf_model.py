"""Tests for the analytical performance model (Figures 2 and 5)."""

import pytest

from repro.dram.timing import CXL_MEMORY_LATENCY_NS, NATIVE_DRAM_LATENCY_NS
from repro.sim.perf_model import (INTERLEAVING_OFF_PENALTY_CXL,
                                  PerfModelConfig, PerformanceModel,
                                  TRANSLATION_OVERHEAD)
from repro.workloads.cloudsuite import PROFILES


@pytest.fixture
def model():
    return PerformanceModel()


class TestRankSweep:
    def test_baseline_is_zero(self, model):
        assert model.mean_rank_sweep_slowdown(8) == pytest.approx(0.0)

    def test_monotone_in_rank_count(self, model):
        slowdowns = [model.mean_rank_sweep_slowdown(r) for r in (8, 6, 4, 2)]
        assert slowdowns == sorted(slowdowns)

    def test_figure2_band(self, model):
        """Paper: ~0.7 % average loss at 2 ranks per channel."""
        assert 0.002 < model.mean_rank_sweep_slowdown(2) < 0.02

    def test_memory_intensive_workloads_suffer_more(self, model):
        graph = model.rank_sweep_slowdown(PROFILES["graph-analytics"], 2)
        web = model.rank_sweep_slowdown(PROFILES["web-search"], 2)
        assert graph > web

    def test_invalid_rank_count(self, model):
        with pytest.raises(ValueError):
            model.bank_queue_delay_ns(PROFILES["web-search"], 0)


class TestInterleaving:
    def test_figure5_band_local(self, model):
        """Paper: ~1.7 % for local memory."""
        assert 0.008 < model.mean_interleaving_slowdown(cxl=False) < 0.03

    def test_figure5_band_cxl(self, model):
        """Paper: ~1.4 % under CXL latency."""
        assert 0.006 < model.mean_interleaving_slowdown(cxl=True) < 0.025

    def test_cxl_penalty_relatively_smaller(self, model):
        """The same queueing delta matters less at higher base latency."""
        assert model.mean_interleaving_slowdown(cxl=True) < \
            model.mean_interleaving_slowdown(cxl=False)

    def test_more_visible_ranks_less_penalty(self, model):
        profile = PROFILES["graph-analytics"]
        narrow = model.interleaving_slowdown(profile, NATIVE_DRAM_LATENCY_NS,
                                             footprint_rank_share=0.125)
        wide = model.interleaving_slowdown(profile, NATIVE_DRAM_LATENCY_NS,
                                           footprint_rank_share=0.5)
        assert wide < narrow


class TestComponents:
    def test_queue_delay_decreases_with_ranks(self, model):
        profile = PROFILES["graph-analytics"]
        assert model.bank_queue_delay_ns(profile, 2) > \
            model.bank_queue_delay_ns(profile, 8)

    def test_time_per_ki_increases_with_latency(self, model):
        profile = PROFILES["data-caching"]
        assert model.time_per_kilo_instruction_ns(
            profile, 8, CXL_MEMORY_LATENCY_NS) > \
            model.time_per_kilo_instruction_ns(
                profile, 8, NATIVE_DRAM_LATENCY_NS)

    def test_access_rate_scales_with_mapki(self, model):
        assert model.access_rate_per_channel(PROFILES["graph-analytics"]) > \
            model.access_rate_per_channel(PROFILES["web-search"])


class TestPaperConstants:
    def test_section51_constants(self):
        assert INTERLEAVING_OFF_PENALTY_CXL == pytest.approx(0.014)
        assert TRANSLATION_OVERHEAD == pytest.approx(0.0018)
