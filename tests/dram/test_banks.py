"""Tests for the bank-level row-buffer model."""

import numpy as np
import pytest

from repro.dram.banks import (AddressDecoder, BankState, RowBufferAnalyzer,
                              RowOutcome)
from repro.dram.geometry import DramGeometry
from repro.units import GIB, KIB, MIB


@pytest.fixture
def geometry():
    return DramGeometry(rank_bytes=1 * GIB)


class TestBankState:
    def test_first_access_is_miss(self, geometry):
        banks = BankState(geometry)
        assert banks.access(0, 0, 0, row=5) is RowOutcome.MISS

    def test_repeat_row_hits(self, geometry):
        banks = BankState(geometry)
        banks.access(0, 0, 0, row=5)
        assert banks.access(0, 0, 0, row=5) is RowOutcome.HIT

    def test_different_row_conflicts(self, geometry):
        banks = BankState(geometry)
        banks.access(0, 0, 0, row=5)
        assert banks.access(0, 0, 0, row=6) is RowOutcome.CONFLICT

    def test_banks_are_independent(self, geometry):
        banks = BankState(geometry)
        banks.access(0, 0, 0, row=5)
        assert banks.access(0, 0, 1, row=6) is RowOutcome.MISS
        assert banks.access(1, 0, 0, row=7) is RowOutcome.MISS

    def test_precharge_all(self, geometry):
        banks = BankState(geometry)
        banks.access(0, 0, 0, row=5)
        banks.precharge_all()
        assert banks.open_row(0, 0, 0) == BankState.IDLE
        assert banks.access(0, 0, 0, row=5) is RowOutcome.MISS

    def test_stats_ratios(self, geometry):
        banks = BankState(geometry)
        banks.access(0, 0, 0, row=1)
        banks.access(0, 0, 0, row=1)
        banks.access(0, 0, 0, row=2)
        assert banks.stats.accesses == 3
        assert banks.stats.hit_ratio == pytest.approx(1 / 3)
        assert banks.stats.conflict_ratio == pytest.approx(1 / 3)


class TestAddressDecoder:
    def test_unknown_mapping_rejected(self, geometry):
        with pytest.raises(ValueError):
            AddressDecoder(geometry, mapping="bogus")

    def test_dtl_channel_follows_segment(self, geometry):
        decoder = AddressDecoder(geometry, mapping="dtl")
        assert decoder.decode(0).channel == 0
        assert decoder.decode(2 * MIB).channel == 1
        # Within one segment the channel never changes.
        assert decoder.decode(2 * MIB - 64).channel == 0

    def test_interleaved_channel_follows_cacheline(self, geometry):
        decoder = AddressDecoder(geometry, mapping="interleaved")
        assert decoder.decode(0).channel == 0
        assert decoder.decode(64).channel == 1

    def test_dtl_sequential_within_segment_changes_bank_per_row(self,
                                                                geometry):
        decoder = AddressDecoder(geometry, mapping="dtl")
        first = decoder.decode(0)
        same_row = decoder.decode(4 * KIB)
        next_row = decoder.decode(8 * KIB)
        assert (first.bank, first.row) == (same_row.bank, same_row.row)
        assert next_row.bank != first.bank or next_row.row != first.row

    def test_fields_in_range(self, geometry):
        rng = np.random.default_rng(0)
        for mapping in ("dtl", "interleaved"):
            decoder = AddressDecoder(geometry, mapping=mapping)
            for address in rng.integers(0, geometry.total_bytes, size=200):
                decoded = decoder.decode(int(address))
                assert 0 <= decoded.channel < geometry.channels
                assert 0 <= decoded.rank < geometry.ranks_per_channel
                assert 0 <= decoded.bank < geometry.banks_per_rank
                assert decoded.row >= 0


class TestRowBufferAnalyzer:
    def test_sequential_stream_hits_often_under_dtl(self, geometry):
        """A sequential scan stays in each row for 128 cachelines."""
        analyzer = RowBufferAnalyzer(geometry, mapping="dtl")
        addresses = np.arange(0, 1 * MIB, 64, dtype=np.int64)
        stats = analyzer.run(addresses)
        assert stats.hit_ratio > 0.9

    def test_random_stream_conflicts(self, geometry):
        analyzer = RowBufferAnalyzer(geometry, mapping="dtl")
        rng = np.random.default_rng(0)
        addresses = rng.integers(0, geometry.total_bytes, size=4000)
        stats = analyzer.run(addresses)
        assert stats.hit_ratio < 0.2

    def test_service_time_between_extremes(self, geometry):
        analyzer = RowBufferAnalyzer(geometry)
        rng = np.random.default_rng(1)
        analyzer.run(rng.integers(0, geometry.total_bytes, size=2000))
        service = analyzer.mean_service_time_ns()
        assert analyzer.timing.row_hit_latency_ns() < service \
            <= analyzer.timing.row_conflict_latency_ns()

    def test_empty_trace_default(self, geometry):
        analyzer = RowBufferAnalyzer(geometry)
        assert analyzer.mean_service_time_ns() == pytest.approx(
            analyzer.timing.row_miss_latency_ns())

    def test_dtl_mapping_preserves_row_locality(self, geometry):
        """The Figure 5 trade-off in microcosm: cacheline interleaving
        spreads a sequential stream over channels (parallelism) at the
        cost of row locality; the DTL's segment interleaving keeps rows
        hot within each channel."""
        addresses = np.arange(0, 1 * MIB, 64, dtype=np.int64)
        dtl = RowBufferAnalyzer(geometry, mapping="dtl")
        interleaved = RowBufferAnalyzer(geometry, mapping="interleaved")
        dtl_stats = dtl.run(addresses)
        il_stats = interleaved.run(addresses)
        assert dtl_stats.hit_ratio >= il_stats.hit_ratio
