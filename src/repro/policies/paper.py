"""The paper's own behaviour, re-expressed through the protocol.

Every decision below is a verbatim transplant of the logic that used to
live inline in ``RankPowerDownPolicy`` / ``HotnessSelfRefreshPolicy``;
``tests/policies/test_paper_identity.py`` pins it bit-identical to the
pre-refactor simulators.  Tie-breaking subtleties are load-bearing:

* power-down victims — stable sort by allocated segments, so equal
  ranks keep the host's iteration order;
* consolidation target — first maximum under strict ``>``, so the
  earliest candidate wins utilisation ties;
* SR victim block — ``min`` over ``(window count, block)``, so the
  lowest-numbered block wins count ties;
* cold partner — the CLOCK hand (``clock_scan``), persistent pointer
  and round-robin rotation included.
"""

from __future__ import annotations

from typing import Sequence

from repro.policies.protocol import (
    ColdSearch,
    DemotionLevel,
    Policy,
    RankStats,
    register_policy,
)


@register_policy
class PaperPolicy(Policy):
    """CLOCK victim selection + static demotion, exactly as published.

    Demotion is static per site: power-down parks in MPSM (victims are
    evacuated first, so losing contents is free), self-refresh parks in
    SELF_REFRESH (victims keep live, cold data).
    """

    name = "paper"

    def powerdown_victims(self, channel: int,
                          candidates: Sequence[RankStats],
                          count: int) -> list[int] | None:
        ranked = sorted(candidates, key=lambda stats: stats.allocated)
        return [stats.rank for stats in ranked[:count]]

    def consolidation_target(self, candidates: Sequence[RankStats],
                             ) -> RankStats | None:
        best: RankStats | None = None
        best_util = -1.0
        for stats in candidates:
            if stats.utilization > best_util:
                best = stats
                best_util = stats.utilization
        return best

    def sr_victim_block(self, channel: int,
                        blocks: Sequence[tuple[int, ...]],
                        stats: dict[int, RankStats]) -> tuple[int, ...]:
        return min(
            blocks,
            key=lambda block: (
                sum(stats[rank].last_window_count for rank in block),
                block,
            ),
        )

    def sr_cold_partner(self, channel: int,
                        search: ColdSearch) -> int | None:
        return search.clock_scan()

    def demotion_level(self, site: str,
                       stats: Sequence[RankStats]) -> DemotionLevel:
        if site == "powerdown":
            return DemotionLevel.MPSM
        return DemotionLevel.SELF_REFRESH


__all__ = ["PaperPolicy"]
