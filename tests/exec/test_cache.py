"""Result cache: memory/disk round trips and failure degradation."""

from repro.exec.cache import CACHE_DIR_ENV, ResultCache


def test_memory_hit_and_miss():
    cache = ResultCache()
    hit, value = cache.get("k")
    assert not hit and value is None
    cache.put("k", {"x": 1})
    hit, value = cache.get("k")
    assert hit and value == {"x": 1}
    assert cache.hits == 1 and cache.misses == 1
    assert len(cache) == 1


def test_disk_round_trip(tmp_path):
    writer = ResultCache(tmp_path)
    writer.put("fleet-abc", [1, 2, 3])
    assert (tmp_path / "fleet-abc.pkl").exists()
    # A fresh cache (new process, conceptually) reads the same entry.
    reader = ResultCache(tmp_path)
    hit, value = reader.get("fleet-abc")
    assert hit and value == [1, 2, 3]
    assert len(reader) == 1


def test_directory_from_environment(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
    cache = ResultCache()
    assert cache.directory == tmp_path
    monkeypatch.delenv(CACHE_DIR_ENV)
    assert ResultCache().directory is None


def test_corrupt_entry_degrades_to_miss(tmp_path):
    (tmp_path / "bad.pkl").write_bytes(b"this is not a pickle")
    cache = ResultCache(tmp_path)
    hit, value = cache.get("bad")
    assert not hit and value is None
    cache.put("bad", "fixed")  # overwrite repairs the entry
    assert ResultCache(tmp_path).get("bad") == (True, "fixed")


def test_clear(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("a", 1)
    cache.put("b", 2)
    assert len(cache) == 2
    cache.clear()
    assert len(cache) == 0
    assert cache.get("a") == (False, None)
    assert not list(tmp_path.glob("*.pkl"))


def test_no_tmp_droppings(tmp_path):
    cache = ResultCache(tmp_path)
    for index in range(5):
        cache.put(f"k{index}", index)
    assert not list(tmp_path.glob("*.tmp"))


def _age(tmp_path, key, seconds_ago):
    import os
    import time
    path = tmp_path / f"{key}.pkl"
    stamp = time.time() - seconds_ago
    os.utime(path, (stamp, stamp))


def test_total_bytes(tmp_path):
    assert ResultCache().total_bytes() == 0  # memory-only
    cache = ResultCache(tmp_path)
    assert cache.total_bytes() == 0
    cache.put("a", b"x" * 1000)
    cache.put("b", b"y" * 1000)
    total = cache.total_bytes()
    assert total == sum(path.stat().st_size
                        for path in tmp_path.glob("*.pkl"))
    assert total > 2000


def test_prune_evicts_least_recently_used(tmp_path):
    cache = ResultCache(tmp_path)
    for key, age_s in (("old", 300), ("mid", 200), ("new", 100)):
        cache.put(key, b"z" * 4096)
        _age(tmp_path, key, age_s)
    entry = (tmp_path / "new.pkl").stat().st_size
    evicted = cache.prune(2 * entry)
    assert evicted == 1
    assert not (tmp_path / "old.pkl").exists()
    assert (tmp_path / "mid.pkl").exists()
    assert (tmp_path / "new.pkl").exists()
    assert cache.total_bytes() <= 2 * entry


def test_prune_drops_memory_layer_too(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("gone", 1)
    assert cache.prune(0) == 1
    # The pruned entry must not resurrect from this process's dict.
    assert cache.get("gone") == (False, None)


def test_get_touches_mtime_refreshing_recency(tmp_path):
    cache = ResultCache(tmp_path)
    for key, age_s in (("hotter", 300), ("colder", 200)):
        cache.put(key, b"z" * 4096)
        _age(tmp_path, key, age_s)
    # A disk hit refreshes the older entry, flipping the LRU order.
    assert ResultCache(tmp_path).get("hotter")[0]
    entry = (tmp_path / "colder.pkl").stat().st_size
    assert cache.prune(entry) == 1
    assert (tmp_path / "hotter.pkl").exists()
    assert not (tmp_path / "colder.pkl").exists()


def test_prune_memory_only_is_noop():
    cache = ResultCache()
    cache.put("k", 1)
    assert cache.prune(0) == 0
    assert cache.get("k") == (True, 1)


def test_prune_under_cap_evicts_nothing(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("keep", b"z" * 100)
    assert cache.prune(10 * 1024 * 1024) == 0
    assert cache.get("keep") == (True, b"z" * 100)
