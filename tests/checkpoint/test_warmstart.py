"""Warm-start executor: forked cells equal cold cells, caching is sound."""

from __future__ import annotations

import dataclasses

import pytest

from repro.exec import (ExecConfig, ResultCache, clear_prefix_memo,
                        prefix_memo_size, run_tasks, run_warm_task, task_key,
                        warm_task_key)
from repro.exec.hashing import stable_hash
from repro.exec.runner import EXEC_METRICS
from repro.sim.experiments import EXPERIMENTS
from repro.sim.selfrefresh_sim import SelfRefreshSimulator
from repro.sim.warm import plan_selfrefresh_grid, prefix_class_key


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_prefix_memo()
    yield
    clear_prefix_memo()


def tiny():
    return EXPERIMENTS["selfrefresh"].tiny_config()


def duration_ladder(base, durations):
    return [dataclasses.replace(base, duration_s=d) for d in durations]


def test_grouping_by_duration_normalised_config():
    base = tiny()
    cells = duration_ladder(base, (1.0, 2.0, 3.0))
    cells += duration_ladder(dataclasses.replace(base, seed=base.seed + 1),
                             (1.0, 2.0))
    plan = plan_selfrefresh_grid(cells)
    assert len(plan.specs) == 5
    assert plan.num_classes == 2
    # Same class -> same prefix key; different seed -> different class.
    assert plan.specs[0].prefix_key == plan.specs[2].prefix_key
    assert plan.specs[0].prefix_key != plan.specs[3].prefix_key
    assert (prefix_class_key(cells[0]) == prefix_class_key(cells[1])
            != prefix_class_key(cells[3]))


def test_warm_equals_cold_per_cell():
    base = tiny()
    cells = duration_ladder(base, (1.0, 2.0, 3.0))
    plan = plan_selfrefresh_grid(cells)
    cold = [SelfRefreshSimulator(config).run() for config in cells]
    warm = [run_warm_task(spec) for spec in plan.specs]
    for c, w in zip(cold, warm):
        assert c.to_record().metrics == w.to_record().metrics
        assert stable_hash(c.to_record().metrics) == \
            stable_hash(w.to_record().metrics)


def test_warm_equals_cold_through_pool():
    base = tiny()
    cells = duration_ladder(base, (1.0, 2.0))
    plan = plan_selfrefresh_grid(cells)
    cold = [SelfRefreshSimulator(config).run() for config in cells]
    outcomes = run_tasks(plan.tasks(),
                         ExecConfig(workers=2, force_pool=True))
    assert all(outcome.ok for outcome in outcomes)
    for c, outcome in zip(cold, outcomes):
        assert c.to_record().metrics == outcome.value.to_record().metrics


def test_prefix_computed_once_then_memoised():
    base = tiny()
    plan = plan_selfrefresh_grid(duration_ladder(base, (1.0, 2.0, 3.0)))
    before = EXEC_METRICS.counter("exec.warm.prefix_runs").value
    for spec in plan.specs:
        run_warm_task(spec)
    after = EXEC_METRICS.counter("exec.warm.prefix_runs").value
    assert after - before == 1  # one class -> one prefix simulation
    assert prefix_memo_size() == 1


def test_prefix_spills_to_cache_and_reloads(tmp_path):
    base = tiny()
    plan = plan_selfrefresh_grid(duration_ladder(base, (1.0, 2.0)))
    cache = ResultCache(tmp_path)
    run_warm_task(plan.specs[0], cache)
    assert any(path.name.startswith("warmstart-prefix")
               for path in tmp_path.iterdir())
    # A fresh process (modelled by clearing the memo) reloads the
    # spilled snapshot instead of recomputing the prefix.
    clear_prefix_memo()
    before = EXEC_METRICS.counter("exec.warm.prefix_runs").value
    spills = EXEC_METRICS.counter("exec.warm.spill_hits").value
    result = run_warm_task(plan.specs[1], ResultCache(tmp_path))
    assert EXEC_METRICS.counter("exec.warm.prefix_runs").value == before
    assert EXEC_METRICS.counter("exec.warm.spill_hits").value == spills + 1
    cold = SelfRefreshSimulator(plan.configs[1]).run()
    assert cold.to_record().metrics == result.to_record().metrics


def test_warm_task_key_folds_prefix_identity():
    base = tiny()
    plan = plan_selfrefresh_grid(duration_ladder(base, (1.0, 2.0)))
    spec = plan.specs[1]
    config = plan.configs[1]
    # Warm and cold runs of the same config must never share a key.
    assert warm_task_key(spec, config) != task_key("selfrefresh", config)
    # A different prefix (key or length) changes the task key.
    other = dataclasses.replace(spec, prefix_key="other")
    assert warm_task_key(other, config) != warm_task_key(spec, config)
    longer = dataclasses.replace(spec, prefix_steps=spec.prefix_steps + 1)
    assert warm_task_key(longer, config) != warm_task_key(spec, config)
    # Deterministic across calls, sensitive to ambient context.
    assert warm_task_key(spec, config) == warm_task_key(spec, config)
    assert warm_task_key(spec, config, context={"faults": "x"}) != \
        warm_task_key(spec, config)


def test_warm_results_cache_and_replay(tmp_path):
    base = tiny()
    plan = plan_selfrefresh_grid(duration_ladder(base, (1.0, 2.0)))
    cache = ResultCache(tmp_path)
    first = run_tasks(plan.tasks(cache=cache), ExecConfig(workers=1),
                      cache=cache)
    assert not any(outcome.from_cache for outcome in first)
    clear_prefix_memo()
    second = run_tasks(plan.tasks(cache=cache), ExecConfig(workers=1),
                       cache=cache)
    assert all(outcome.from_cache for outcome in second)
    for a, b in zip(first, second):
        assert a.value.to_record().metrics == b.value.to_record().metrics


def test_singleton_class_is_just_a_restore():
    base = tiny()
    plan = plan_selfrefresh_grid([base])
    assert plan.num_classes == 1
    cold = SelfRefreshSimulator(base).run()
    warm = run_warm_task(plan.specs[0])
    assert cold.to_record().metrics == warm.to_record().metrics
