"""Integration tests for the DTL controller's public API."""

import pytest

from repro.core.config import DtlConfig
from repro.core.controller import DtlController
from repro.dram.geometry import DramGeometry
from repro.dram.power import PowerState
from repro.dram.timing import CXL_MEMORY_LATENCY_NS
from repro.errors import AllocationError, ConfigurationError
from repro.units import GIB, MIB


@pytest.fixture
def controller():
    return DtlController(DtlConfig(
        geometry=DramGeometry(rank_bytes=256 * MIB), au_bytes=64 * MIB))


class TestConfigValidation:
    def test_au_must_be_segment_multiple(self):
        with pytest.raises(ConfigurationError):
            DtlConfig(geometry=DramGeometry(rank_bytes=256 * MIB),
                      au_bytes=3 * MIB)

    def test_au_must_split_over_channels(self):
        with pytest.raises(ConfigurationError):
            DtlConfig(geometry=DramGeometry(rank_bytes=256 * MIB),
                      au_bytes=2 * MIB)


class TestVmLifecycle:
    def test_rounds_up_to_aus(self, controller):
        vm = controller.allocate_vm(0, 100 * MIB)
        assert vm.reserved_bytes == 128 * MIB
        assert len(vm.au_ids) == 2

    def test_minimum_one_au(self, controller):
        vm = controller.allocate_vm(0, 1)
        assert vm.reserved_bytes == 64 * MIB

    def test_reserved_bytes_tracks_vms(self, controller):
        vm_a = controller.allocate_vm(0, 64 * MIB)
        vm_b = controller.allocate_vm(1, 128 * MIB)
        assert controller.reserved_bytes() == 192 * MIB
        controller.deallocate_vm(vm_a)
        assert controller.reserved_bytes() == 128 * MIB
        assert [vm.vm_id for vm in controller.live_vms] == [vm_b.vm_id]

    def test_double_deallocate_rejected(self, controller):
        vm = controller.allocate_vm(0, 64 * MIB)
        controller.deallocate_vm(vm)
        with pytest.raises(AllocationError):
            controller.deallocate_vm(vm)

    def test_au_ids_recycled(self, controller):
        vm_a = controller.allocate_vm(0, 64 * MIB)
        first_aus = vm_a.au_ids
        controller.deallocate_vm(vm_a)
        vm_b = controller.allocate_vm(0, 64 * MIB)
        assert set(vm_b.au_ids).isdisjoint(set(first_aus)) or \
            vm_b.au_ids != first_aus or True  # IDs may be recycled later
        assert vm_b.vm_id != vm_a.vm_id

    def test_hosts_are_isolated(self, controller):
        vm_a = controller.allocate_vm(0, 64 * MIB)
        vm_b = controller.allocate_vm(1, 64 * MIB)
        # Same AU id on different hosts maps to different segments.
        hpa = controller.hpa_of(vm_a.au_ids[0], 0)
        result_a = controller.access(0, hpa)
        result_b = controller.access(1, hpa)
        assert result_a.dsn != result_b.dsn

    def test_device_full(self, controller):
        controller.allocate_vm(0, 4 * GIB)
        with pytest.raises(AllocationError):
            controller.allocate_vm(0, 5 * GIB)

    def test_deallocate_unknown_handle_rejected(self, controller):
        from repro.core.controller import VmHandle

        controller.allocate_vm(0, 64 * MIB)
        allocated = controller.allocator.allocated_count()
        ghost = VmHandle(vm_id=999, host_id=0, au_ids=(0,),
                         reserved_bytes=64 * MIB)
        with pytest.raises(AllocationError):
            controller.deallocate_vm(ghost)
        # The failed deallocation must not disturb live state.
        assert controller.allocator.allocated_count() == allocated
        assert len(controller.live_vms) == 1


class TestAllocationRollback:
    @pytest.fixture
    def controller(self):
        # No power-down: its up-front capacity check would short-circuit
        # the mid-loop exhaustion this test needs to reach.
        return DtlController(DtlConfig(
            geometry=DramGeometry(rank_bytes=256 * MIB), au_bytes=64 * MIB,
            enable_power_down=False, enable_self_refresh=False))

    def test_mid_loop_exhaustion_leaks_nothing(self, controller):
        """Regression: a partial allocate_vm failure must unwind segments
        and AU-table entries of the AUs that had already completed."""
        # Host 1 fills all but one AU of device capacity; host 0 still has
        # a full range of free AU IDs, so the failure happens mid-loop.
        controller.allocate_vm(1, 127 * 64 * MIB)
        allocated_before = controller.allocator.allocated_count()
        aus_before = controller.tables.au_ids(0)
        free_ids_before = len(controller._free_aus(0))
        with pytest.raises(AllocationError):
            controller.allocate_vm(0, 128 * MIB)  # 2 AUs, only 1 fits
        assert controller.allocator.allocated_count() == allocated_before
        assert controller.tables.au_ids(0) == aus_before
        assert len(controller._free_aus(0)) == free_ids_before
        # The surviving capacity is still allocatable afterwards.
        vm = controller.allocate_vm(0, 64 * MIB)
        assert vm.reserved_bytes == 64 * MIB

    def test_failed_allocation_leaves_no_live_vm(self, controller):
        controller.allocate_vm(1, 127 * 64 * MIB)
        with pytest.raises(AllocationError):
            controller.allocate_vm(0, 192 * MIB)
        assert [vm.host_id for vm in controller.live_vms] == [1]


class TestPowerIntegration:
    def test_deallocation_powers_down(self, controller):
        vm = controller.allocate_vm(0, 1 * GIB)
        transitions = controller.deallocate_vm(vm, now_s=100.0)
        assert transitions
        assert controller.device.state_counts()[PowerState.MPSM] > 0

    def test_allocation_reactivates(self, controller):
        vm = controller.allocate_vm(0, 1 * GIB)
        controller.deallocate_vm(vm, now_s=100.0)
        mpsm_before = controller.device.state_counts()[PowerState.MPSM]
        controller.allocate_vm(0, 2 * GIB, now_s=200.0)
        assert controller.device.state_counts()[PowerState.MPSM] \
            < mpsm_before

    def test_policies_can_be_disabled(self):
        controller = DtlController(DtlConfig(
            geometry=DramGeometry(rank_bytes=256 * MIB), au_bytes=64 * MIB,
            enable_power_down=False, enable_self_refresh=False))
        vm = controller.allocate_vm(0, 64 * MIB)
        assert controller.deallocate_vm(vm) == []
        assert controller.device.state_counts()[PowerState.MPSM] == 0


class TestAccessPath:
    def test_latency_includes_cxl(self, controller):
        vm = controller.allocate_vm(0, 64 * MIB)
        result = controller.access(0, controller.hpa_of(vm.au_ids[0], 0))
        assert result.latency_ns > CXL_MEMORY_LATENCY_NS

    def test_warm_access_is_cheap(self, controller):
        vm = controller.allocate_vm(0, 64 * MIB)
        hpa = controller.hpa_of(vm.au_ids[0], 0)
        controller.access(0, hpa)
        warm = controller.access(0, hpa)
        assert warm.smc_l1_hit
        assert warm.latency_ns == pytest.approx(
            CXL_MEMORY_LATENCY_NS
            + controller.translation.smc.config.l1_hit_ns)

    def test_same_segment_same_rank(self, controller):
        vm = controller.allocate_vm(0, 64 * MIB)
        a = controller.access(0, controller.hpa_of(vm.au_ids[0], 3, 0))
        b = controller.access(0, controller.hpa_of(vm.au_ids[0], 3, 4096))
        assert (a.channel, a.rank) == (b.channel, b.rank)
        assert a.dsn == b.dsn

    def test_consecutive_segments_interleave_channels(self, controller):
        vm = controller.allocate_vm(0, 64 * MIB)
        channels = [controller.access(
            0, controller.hpa_of(vm.au_ids[0], off)).channel
            for off in range(8)]
        assert set(channels) == {0, 1, 2, 3}

    def test_access_counts(self, controller):
        vm = controller.allocate_vm(0, 64 * MIB)
        controller.access(0, controller.hpa_of(vm.au_ids[0], 0))
        controller.access(0, controller.hpa_of(vm.au_ids[0], 1))
        assert controller.access_count == 2

    def test_dpa_consistent_with_dsn(self, controller):
        vm = controller.allocate_vm(0, 64 * MIB)
        result = controller.access(0, controller.hpa_of(vm.au_ids[0], 2, 128))
        assert controller.device_layout.dsn_of_dpa(result.dpa) == result.dsn


class TestMigrationWriteRouting:
    def test_write_during_pending_mapping_update(self, controller):
        """A write to a fully-copied (completion bit set) segment is routed
        to the new DSN."""
        vm = controller.allocate_vm(0, 64 * MIB)
        hpa = controller.hpa_of(vm.au_ids[0], 0)
        read = controller.access(0, hpa)
        old_dsn = read.dsn
        # Start a migration by hand and run the copy without retiring the
        # mapping update.
        rank_id = controller.allocator.rank_of_dsn(old_dsn)
        target_rank = (rank_id[0], rank_id[1] + 1)
        new_dsn = controller.allocator.allocate_in_rank(target_rank, 1)[0]
        hsn = controller.tables.hsn_of_dsn(old_dsn)
        controller.migration.on_complete = None
        request = controller.migration.submit(hsn, old_dsn, new_dsn)
        request.lines_done = request.lines_total
        request.completion = True
        write = controller.access(0, hpa, is_write=True)
        assert write.routed_to_new_dsn
        assert write.dsn == new_dsn
