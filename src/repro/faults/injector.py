"""The fault injector: deterministic execution of a :class:`FaultPlan`.

One injector is armed on a :class:`~repro.core.controller.DtlController`
(:meth:`~repro.core.controller.DtlController.arm_faults`) and shared by
every subsystem below it.  Each hook method is called from exactly one
guarded site in the datapath (see
:data:`~repro.faults.hooks.HOOK_CATALOG`); the injector counts eligible
events per spec and fires on the counter arithmetic documented in
:mod:`repro.faults.plan` — no clock, no RNG, so a replay of the same
plan over the same workload is bit-identical.

Telemetry is **lazy**: no ``faults.*`` metric exists in the registry
until the first fault actually fires.  An armed injector whose plan
never fires (or has no specs) therefore leaves the telemetry snapshot
bit-identical to a run with no injector at all — the determinism
contract the property suite pins down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cxl.link import CxlLinkConfig
from repro.faults.hooks import HookPoint
from repro.faults.plan import (CxlLinkFault, EccFault, FaultPlan, FaultSpec,
                               MigrationAbortFault, PowerExitFault,
                               SmcCorruptionFault)
from repro.telemetry import EventKind, EventTrace, MetricsRegistry

#: Buckets for the ``faults.cxl.retries`` histogram (retry counts).
RETRY_BUCKETS = (1.0, 2.0, 4.0, 8.0)


@dataclass
class ReliabilityReport:
    """What a fault campaign did and whether the DTL survived it.

    Attributes:
        plan_name: Name of the executed plan.
        seed: The plan's seed.
        hook_visits: Hook point name -> events the datapath exposed.
        injected: Hook point name -> faults actually fired there.
        detected: Faults the model detected (all of them: injection is
            never silent in this simulator).
        recovered: Faults recovered without data loss.
        ecc_corrected: Single-bit ECC errors corrected in place.
        ecc_uncorrected: Multi-bit ECC errors detected (not corrected).
        cxl_retry_counts: Retries-per-replayed-transaction histogram.
        power_exit_failures: Failed MPSM/SR exit attempts before success.
        data_loss_events: Injected faults that lost committed data; the
            chaos soak asserts this stays 0.
        checker_audits: Consistency audits run during the campaign.
        checker_violations: Invariant violations those audits found.
    """

    plan_name: str = "plan"
    seed: int = 0
    hook_visits: dict[str, int] = field(default_factory=dict)
    injected: dict[str, int] = field(default_factory=dict)
    detected: int = 0
    recovered: int = 0
    ecc_corrected: int = 0
    ecc_uncorrected: int = 0
    cxl_retry_counts: dict[int, int] = field(default_factory=dict)
    power_exit_failures: int = 0
    data_loss_events: int = 0
    checker_audits: int = 0
    checker_violations: list[str] = field(default_factory=list)

    @property
    def injected_total(self) -> int:
        """Total faults fired across all hook points."""
        return sum(self.injected.values())

    @property
    def empty(self) -> bool:
        """True when the campaign fired nothing."""
        return self.injected_total == 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "plan_name": self.plan_name,
            "seed": self.seed,
            "hook_visits": dict(self.hook_visits),
            "injected": dict(self.injected),
            "injected_total": self.injected_total,
            "detected": self.detected,
            "recovered": self.recovered,
            "ecc_corrected": self.ecc_corrected,
            "ecc_uncorrected": self.ecc_uncorrected,
            "cxl_retry_counts": {str(retries): count for retries, count
                                 in sorted(self.cxl_retry_counts.items())},
            "power_exit_failures": self.power_exit_failures,
            "data_loss_events": self.data_loss_events,
            "checker_audits": self.checker_audits,
            "checker_violations": list(self.checker_violations),
        }

    @classmethod
    def combine(cls, reports: list["ReliabilityReport"],
                ) -> "ReliabilityReport":
        """Aggregate per-level reports into one campaign report."""
        total = cls(plan_name=reports[0].plan_name if reports else "plan",
                    seed=reports[0].seed if reports else 0)
        for report in reports:
            for name, count in report.hook_visits.items():
                total.hook_visits[name] = (total.hook_visits.get(name, 0)
                                           + count)
            for name, count in report.injected.items():
                total.injected[name] = total.injected.get(name, 0) + count
            for retries, count in report.cxl_retry_counts.items():
                total.cxl_retry_counts[retries] = (
                    total.cxl_retry_counts.get(retries, 0) + count)
            total.detected += report.detected
            total.recovered += report.recovered
            total.ecc_corrected += report.ecc_corrected
            total.ecc_uncorrected += report.ecc_uncorrected
            total.power_exit_failures += report.power_exit_failures
            total.data_loss_events += report.data_loss_events
            total.checker_audits += report.checker_audits
            total.checker_violations.extend(report.checker_violations)
        return total


class FaultInjector:
    """Executes one :class:`FaultPlan` against the armed datapath."""

    def __init__(self, plan: FaultPlan,
                 registry: MetricsRegistry | None = None,
                 trace: EventTrace | None = None,
                 link: CxlLinkConfig | None = None):
        self.plan = plan
        self._registry = registry
        self._trace = trace
        self._link = link if link is not None else CxlLinkConfig()
        self._by_hook = plan.by_hook()
        # Per-hook-point visit counters (events the datapath exposed) and
        # per-spec eligible-event / fire counters.  All plain integers:
        # this is the whole determinism story.
        self._visits = {point: 0 for point in HookPoint}
        self._spec_visits = [0] * len(plan.specs)
        self._spec_fires = [0] * len(plan.specs)
        self._injected = {point: 0 for point in HookPoint}
        self.detected = 0
        self.recovered = 0
        self.ecc_corrected = 0
        self.ecc_uncorrected = 0
        self.cxl_retry_counts: dict[int, int] = {}
        self.power_exit_failures = 0
        self.data_loss_events = 0

    @property
    def active(self) -> bool:
        """True when the plan can fire anything at all."""
        return self.plan.active

    def visits(self, point: HookPoint) -> int:
        """Events the datapath exposed at ``point`` so far."""
        return self._visits[point]

    def injected(self, point: HookPoint) -> int:
        """Faults fired at ``point`` so far."""
        return self._injected[point]

    @property
    def injected_total(self) -> int:
        """Total faults fired so far."""
        return sum(self._injected.values())

    # -- internals ---------------------------------------------------------------

    def _eligible(self, index: int, spec: FaultSpec) -> bool:
        """Advance spec ``index``'s eligible-event counter; True to fire."""
        visit = self._spec_visits[index]
        self._spec_visits[index] = visit + 1
        if not spec.matches(visit, self._spec_fires[index]):
            return False
        self._spec_fires[index] += 1
        return True

    def _fired(self, point: HookPoint, spec: FaultSpec,
               **data: Any) -> None:
        """Account one injection.  Telemetry is created lazily here so an
        armed-but-silent injector leaves the registry untouched."""
        self._injected[point] += 1
        if self._registry is not None:
            self._registry.counter("faults.injected").inc()
            self._registry.counter(f"faults.injected.{point.value}").inc()
        if self._trace is not None:
            self._trace.record(EventKind.FAULT_INJECTED, point=point.value,
                               fault=type(spec).__name__, **data)

    # -- hook methods (one per catalog entry) -------------------------------------

    def on_cxl_access(self, now_ns: float = 0.0) -> float:
        """CXL link fault check for one transaction; returns extra ns."""
        self._visits[HookPoint.CXL_ACCESS] += 1
        extra = 0.0
        for index, spec in self._by_hook[HookPoint.CXL_ACCESS]:
            if not self._eligible(index, spec):
                continue
            assert isinstance(spec, CxlLinkFault)
            if spec.kind == "stall":
                extra += spec.stall_ns
            else:
                extra += self._link.replay_latency_ns(spec.retries,
                                                      spec.backoff_ns)
                self.cxl_retry_counts[spec.retries] = (
                    self.cxl_retry_counts.get(spec.retries, 0) + 1)
                if self._registry is not None:
                    self._registry.histogram(
                        "faults.cxl.retries",
                        bounds=RETRY_BUCKETS).observe(float(spec.retries))
            self.detected += 1
            self.recovered += 1  # bounded retry always succeeds here
            self._fired(HookPoint.CXL_ACCESS, spec, time=now_ns,
                        fault_kind=spec.kind, extra_ns=extra)
        return extra

    def on_smc_lookup(self, hsn: int, translation) -> bool:
        """SMC corruption check after translating ``hsn``.

        On fire, the cached entry is dropped (parity detected the
        corruption), forcing a table re-walk on the segment's next
        access.  Returns True when a corruption was injected.
        """
        self._visits[HookPoint.SMC_LOOKUP] += 1
        corrupted = False
        for index, spec in self._by_hook[HookPoint.SMC_LOOKUP]:
            if not self._eligible(index, spec):
                continue
            translation.invalidate(hsn)
            corrupted = True
            self.detected += 1
            self.recovered += 1  # re-walk restores the true mapping
            self._fired(HookPoint.SMC_LOOKUP, spec, hsn=hsn)
        return corrupted

    def on_dram_access(self, channel: int, rank: int, device,
                       now_s: float = 0.0) -> None:
        """ECC fault check for one access to ``(channel, rank)``."""
        self._visits[HookPoint.DRAM_ACCESS] += 1
        for index, spec in self._by_hook[HookPoint.DRAM_ACCESS]:
            assert isinstance(spec, EccFault)
            if not spec.applies_to(channel, rank):
                continue
            if not self._eligible(index, spec):
                continue
            corrected = device.record_ecc_error((channel, rank),
                                                bits=spec.bits, now_s=now_s)
            self.detected += 1
            if corrected:
                self.ecc_corrected += 1
                self.recovered += 1
            else:
                self.ecc_uncorrected += 1
            self._fired(HookPoint.DRAM_ACCESS, spec, channel=channel,
                        rank=rank, bits=spec.bits)

    def on_migration_copy(self, request, channel: int) -> bool:
        """Abort check before one copy step; True aborts the request.

        Called only while ``request.completion`` is clear: after the
        completion bit is set, foreground writes are already redirected
        to the new DSN and an abort would lose them.
        """
        self._visits[HookPoint.MIGRATION_COPY] += 1
        if request.completion:  # defensive: the call site guarantees this
            self.data_loss_events += 1
            return False
        for index, spec in self._by_hook[HookPoint.MIGRATION_COPY]:
            assert isinstance(spec, MigrationAbortFault)
            if not spec.applies_to(request.lines_done, channel):
                continue
            if not self._eligible(index, spec):
                continue
            self.detected += 1
            self.recovered += 1  # the engine retries from line 0
            self._fired(HookPoint.MIGRATION_COPY, spec,
                        old_dsn=request.old_dsn, new_dsn=request.new_dsn,
                        lines_done=request.lines_done, channel=channel)
            return True
        return False

    def on_power_exit(self, target: str, penalty_ns: float = 0.0) -> float:
        """Power-exit fault check; returns extra wake penalty (ns)."""
        point = (HookPoint.MPSM_EXIT if target == "mpsm"
                 else HookPoint.SR_EXIT)
        self._visits[point] += 1
        extra = 0.0
        for index, spec in self._by_hook[point]:
            if not self._eligible(index, spec):
                continue
            assert isinstance(spec, PowerExitFault)
            extra += spec.extra_penalty_ns
            if spec.kind == "fail":
                self.power_exit_failures += spec.failures
            self.detected += 1
            self.recovered += 1  # the exit eventually succeeds
            self._fired(point, spec, fault_kind=spec.kind,
                        base_penalty_ns=penalty_ns, extra_ns=extra)
        return extra

    # -- serialisation -----------------------------------------------------------

    def state_dict(self) -> dict:
        """All fire/visit counters as plain data.

        The plan itself is identity, not state: a restored run re-arms
        the same plan and resumes its counters, so partially consumed
        ``every``/``at`` schedules fire at exactly the events they would
        have in the uninterrupted run.
        """
        return {
            "plan_name": self.plan.name,
            "visits": {point.value: count
                       for point, count in self._visits.items()},
            "spec_visits": list(self._spec_visits),
            "spec_fires": list(self._spec_fires),
            "injected": {point.value: count
                         for point, count in self._injected.items()},
            "detected": self.detected,
            "recovered": self.recovered,
            "ecc_corrected": self.ecc_corrected,
            "ecc_uncorrected": self.ecc_uncorrected,
            "cxl_retry_counts": dict(self.cxl_retry_counts),
            "power_exit_failures": self.power_exit_failures,
            "data_loss_events": self.data_loss_events,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (same plan required)."""
        if state["plan_name"] != self.plan.name:
            raise ValueError(
                f"fault plan mismatch: checkpoint was taken with plan "
                f"{state['plan_name']!r}, injector is armed with "
                f"{self.plan.name!r}")
        if len(state["spec_visits"]) != len(self.plan.specs):
            raise ValueError(
                "fault plan mismatch: checkpoint spec count differs "
                "from the armed plan")
        self._visits = {HookPoint(name): count
                        for name, count in state["visits"].items()}
        self._spec_visits = list(state["spec_visits"])
        self._spec_fires = list(state["spec_fires"])
        self._injected = {HookPoint(name): count
                          for name, count in state["injected"].items()}
        self.detected = state["detected"]
        self.recovered = state["recovered"]
        self.ecc_corrected = state["ecc_corrected"]
        self.ecc_uncorrected = state["ecc_uncorrected"]
        self.cxl_retry_counts = dict(state["cxl_retry_counts"])
        self.power_exit_failures = state["power_exit_failures"]
        self.data_loss_events = state["data_loss_events"]

    # -- reporting ---------------------------------------------------------------

    def report(self) -> ReliabilityReport:
        """Snapshot this injector's campaign as a reliability report."""
        return ReliabilityReport(
            plan_name=self.plan.name,
            seed=self.plan.seed,
            hook_visits={point.value: count
                         for point, count in self._visits.items() if count},
            injected={point.value: count
                      for point, count in self._injected.items() if count},
            detected=self.detected,
            recovered=self.recovered,
            ecc_corrected=self.ecc_corrected,
            ecc_uncorrected=self.ecc_uncorrected,
            cxl_retry_counts=dict(self.cxl_retry_counts),
            power_exit_failures=self.power_exit_failures,
            data_loss_events=self.data_loss_events)


__all__ = ["RETRY_BUCKETS", "ReliabilityReport", "FaultInjector"]
