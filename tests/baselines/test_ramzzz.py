"""Unit tests for the RAMZzz-style baseline policy."""

import numpy as np
import pytest

from repro.baselines.ramzzz import RamzzzConfig, RamzzzPolicy
from repro.core.addressing import HostAddressLayout
from repro.core.allocator import SegmentAllocator
from repro.core.tables import TranslationTables
from repro.core.translation import TranslationEngine
from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.dram.power import PowerState
from repro.units import MIB


def make_policy(threshold=1000, granularity=1):
    geometry = DramGeometry(channels=2, ranks_per_channel=4,
                            rank_bytes=16 * MIB, segment_bytes=1 * MIB)
    device = DramDevice(geometry=geometry)
    allocator = SegmentAllocator(geometry)
    layout = HostAddressLayout(geometry, au_bytes=4 * MIB, max_hosts=2)
    tables = TranslationTables(layout)
    translation = TranslationEngine(layout, tables)
    policy = RamzzzPolicy(device, allocator, tables, translation,
                          RamzzzConfig(demote_threshold=threshold,
                                       victim_granularity=granularity))
    return policy, layout


def allocate(policy, layout, au_id, host=0):
    policy.tables.allocate_au(host, au_id)
    dsns = policy.allocator.allocate(layout.segments_per_au)
    for offset, dsn in enumerate(dsns):
        policy.tables.map_segment(layout.pack_hsn(host, au_id, offset), dsn)
    return dsns


class TestAccessCounting:
    def test_counts_accumulate(self):
        policy, _ = make_policy()
        dsns = np.array([0, 0, 2])
        policy.on_batch(dsns, now_ns=0.0)
        assert policy.segment_counts[0] == 2
        assert policy.segment_counts[2] == 1

    def test_epoch_resets_counts(self):
        policy, _ = make_policy()
        policy.on_batch(np.array([0]), now_ns=0.0)
        policy.end_epoch(now_ns=1e8)
        assert policy.segment_counts[0] == 0


class TestDemotion:
    def test_quiet_block_demotes(self):
        policy, _ = make_policy(threshold=1000)
        # Touch only rank 0 segments; ranks 1-3 are epoch-quiet.
        policy.on_batch(np.array([policy._rank_dsns(0, 0)[0]]), now_ns=0.0)
        demoted = policy.end_epoch(now_ns=1e8)
        assert demoted >= 1
        assert policy.sr_rank_count() >= 1

    def test_strict_threshold_blocks_demotion(self):
        policy, _ = make_policy(threshold=0)
        # Touch one segment in EVERY rank so nothing is fully quiet.
        touches = [policy._rank_dsns(ch, rank)[0]
                   for ch in range(2) for rank in range(4)]
        policy.on_batch(np.array(touches), now_ns=0.0)
        assert policy.end_epoch(now_ns=1e8) == 0

    def test_access_wakes_block(self):
        policy, _ = make_policy(threshold=1000, granularity=2)
        policy.end_epoch(now_ns=1e8)  # everything quiet -> demote coldest
        assert policy.sr_rank_count() >= 2
        sleeping = next((ch, r.index)
                        for (ch, _), r in policy.device.ranks.items()
                        if r.state is PowerState.SELF_REFRESH)
        dsn = policy._rank_dsns(*sleeping)[0]
        penalty = policy.on_batch(np.array([dsn]), now_ns=2e8)
        assert penalty > 0
        assert policy.wakeups == 1
        # The whole CKE block woke.
        channel, rank = sleeping
        partner = rank ^ 1
        assert policy.device.rank(channel, partner).state \
            is PowerState.STANDBY


class TestMigration:
    def test_hot_segments_evicted_from_cold_block(self):
        policy, layout = make_policy(threshold=0)
        dsns = allocate(policy, layout, 0)
        # Heat one segment inside what will be the coldest block.
        target = dsns[0]
        channel = policy._channel_of(target) if hasattr(policy, '_channel_of') \
            else target & 1
        policy.on_batch(np.array([target] * 1), now_ns=0.0)
        hsn = policy.tables.hsn_of_dsn(target)
        policy.end_epoch(now_ns=1e8)
        # The mapping survived wherever the segment went.
        new_dsn = policy.tables.walk(hsn).dsn
        assert policy.tables.hsn_of_dsn(new_dsn) == hsn

    def test_migration_counts_bytes(self):
        policy, layout = make_policy(threshold=0)
        allocate(policy, layout, 0)
        before = policy.migrated_bytes_total
        policy.on_batch(np.array(policy._rank_dsns(0, 0)[:4]), now_ns=0.0)
        policy.end_epoch(now_ns=1e8)
        assert policy.migrated_bytes_total >= before

    def test_mappings_stay_consistent_across_epochs(self):
        policy, layout = make_policy(threshold=0)
        dsns = allocate(policy, layout, 0)
        rng = np.random.default_rng(0)
        for epoch in range(5):
            touched = rng.choice(dsns, size=6)
            current = [policy.tables.walk(
                layout.pack_hsn(0, 0, off)).dsn
                for off in range(layout.segments_per_au)]
            policy.on_batch(np.array([policy.tables.walk(
                layout.pack_hsn(0, 0, off)).dsn
                for off in rng.integers(0, layout.segments_per_au, 6)]),
                now_ns=epoch * 1e8)
            policy.end_epoch(now_ns=(epoch + 1) * 1e8)
            for offset in range(layout.segments_per_au):
                hsn = layout.pack_hsn(0, 0, offset)
                dsn = policy.tables.walk(hsn).dsn
                assert policy.tables.hsn_of_dsn(dsn) == hsn
