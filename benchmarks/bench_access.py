"""Scalar vs batch access-datapath throughput benchmark.

Writes ``BENCH_access.json`` at the repository root comparing the
per-access ``DtlController.access`` loop against the vectorised
``access_batch`` on the same zipf-reuse trace:

* **scalar** — the classic loop, full telemetry (the configuration any
  pre-batch simulation ran under);
* **batch** — one ``access_batch`` call per chunk on the telemetry fast
  path (null metrics registry, disabled event trace).

Both run with the power policies off so the number is the pure
translation datapath (SMC + tables + routing), which is what the batch
engine vectorises; policy costs are workload-dependent and benchmarked
by the simulation suites.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_access.py

CI gates on the speedup::

    PYTHONPATH=src python benchmarks/bench_access.py --check-speedup 5
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
import warnings
from pathlib import Path

import numpy as np

from repro.core.config import DtlConfig
from repro.core.controller import DtlController
from repro.errors import PerformanceWarning
from repro.telemetry import EventTrace, MetricsRegistry

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_access.json"

NUM_ACCESSES = 200_000
NUM_AUS = 4
WRITE_FRACTION = 0.3
SEED = 0
#: Segment-popularity skew.  Cacheline-granular access streams land in
#: 2 MiB segments, so segment-level reuse is very high in practice; 1.5
#: keeps the SMC hot (the design point of Table 3) while still forcing
#: thousands of cold segments through the table-walk path.
ZIPF_EXPONENT = 1.5


def _datapath_config() -> DtlConfig:
    return DtlConfig(enable_self_refresh=False, enable_power_down=False)


def _trace(config: DtlConfig) -> tuple[np.ndarray, np.ndarray]:
    """Zipf-reuse HPAs over a multi-AU footprint (hot SMC, some misses)."""
    rng = np.random.default_rng(SEED)
    segment = config.geometry.segment_bytes
    segments = NUM_AUS * config.au_bytes // segment
    hot = rng.zipf(ZIPF_EXPONENT, NUM_ACCESSES) % segments
    hpas = (hot * segment + rng.integers(0, segment, NUM_ACCESSES)
            ).astype(np.int64)
    return hpas, rng.random(NUM_ACCESSES) < WRITE_FRACTION


def bench_scalar(hpas: np.ndarray, writes: np.ndarray) -> float:
    config = _datapath_config()
    controller = DtlController(config)
    controller.allocate_vm(0, NUM_AUS * config.au_bytes)
    hpa_list = [int(h) for h in hpas]
    write_list = [bool(w) for w in writes]
    with warnings.catch_warnings():
        # The loop is exactly what the warning tells users to stop doing.
        warnings.simplefilter("ignore", PerformanceWarning)
        start = time.perf_counter()
        for hpa, write in zip(hpa_list, write_list):
            controller.access(0, hpa, write)
        return time.perf_counter() - start


def bench_batch(hpas: np.ndarray, writes: np.ndarray) -> float:
    config = _datapath_config()
    controller = DtlController(config, metrics=MetricsRegistry.null(),
                               trace=EventTrace.disabled())
    controller.allocate_vm(0, NUM_AUS * config.au_bytes)
    start = time.perf_counter()
    controller.access_batch(0, hpas, writes)
    return time.perf_counter() - start


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check-speedup", type=float, default=None,
                        metavar="X",
                        help="exit non-zero unless batch >= X times "
                             "scalar accesses/sec")
    args = parser.parse_args(argv)

    config = _datapath_config()
    hpas, writes = _trace(config)
    print(f"trace: {NUM_ACCESSES} accesses, "
          f"{len(np.unique(hpas // config.geometry.segment_bytes))} "
          f"distinct segments")
    scalar_s = bench_scalar(hpas, writes)
    scalar_rate = NUM_ACCESSES / scalar_s
    print(f"  scalar  {scalar_s:.3f}s  {scalar_rate:,.0f} acc/s")
    batch_s = bench_batch(hpas, writes)
    batch_rate = NUM_ACCESSES / batch_s
    speedup = scalar_s / batch_s
    print(f"  batch   {batch_s:.3f}s  {batch_rate:,.0f} acc/s  "
          f"speedup {speedup:.1f}x")

    document = {
        "host": {
            "cpu_count": os.cpu_count() or 1,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "trace": {
            "accesses": NUM_ACCESSES,
            "aus": NUM_AUS,
            "write_fraction": WRITE_FRACTION,
            "zipf_exponent": ZIPF_EXPONENT,
            "seed": SEED,
        },
        "scalar": {
            "wall_s": round(scalar_s, 3),
            "accesses_per_s": round(scalar_rate),
        },
        "batch": {
            "wall_s": round(batch_s, 3),
            "accesses_per_s": round(batch_rate),
        },
        "speedup": round(speedup, 2),
    }
    OUTPUT.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {OUTPUT}")

    if args.check_speedup is not None and speedup < args.check_speedup:
        print(f"FAIL: speedup {speedup:.1f}x is below the "
              f"{args.check_speedup:.1f}x gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
