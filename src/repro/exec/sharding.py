"""Shard-granular fan-out with worker-side reduction.

The flat fan-out path (one :class:`~repro.exec.runner.TaskSpec` per
item) pays process dispatch, ``task_key`` hashing, and result pickling
*per item* — and ships each item's full result object back to the
parent.  For fleet-scale batches (thousands of cheap simulations) both
costs dominate the work itself; `BENCH_exec.json` recorded a 0.81x
fleet "speedup" from exactly this.

A **shard** is a contiguous run of item indices executed inside one
worker invocation.  The worker folds every item's result into a compact
aggregate through a :class:`ShardReducer` *before* anything crosses the
process boundary, so what comes back per shard is the reduced summary,
not the payloads.  Combined with ``run_tasks(stream=...)`` the parent
folds each shard aggregate as it arrives and releases it — no process
ever materialises the whole batch's records.

Determinism contract: items inside a shard run in index order, and the
parent receives shards in submission (index) order, so a caller that
folds per-item values in index order observes the exact same float
operation sequence regardless of shard size or worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Protocol

from repro.exec.runner import TaskSpec, _describe_error


def shard_slices(count: int, shard_size: int) -> list[tuple[int, int]]:
    """Cut ``range(count)`` into contiguous ``(start, stop)`` shards."""
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    return [(start, min(start + shard_size, count))
            for start in range(0, count, shard_size)]


class ShardReducer(Protocol):
    """Worker-side fold over one shard's item results.

    Implementations must be picklable (they ship to the worker with the
    shard task) and must not depend on cross-shard state: ``fresh()``
    starts an empty aggregate per shard, and the parent merges finished
    aggregates in shard order.
    """

    def fresh(self) -> Any:
        """A new, empty aggregate state for one shard."""
        ...

    def item(self, state: Any, index: int, value: Any) -> None:
        """Fold one successful item result into ``state``."""
        ...

    def failure(self, state: Any, index: int, error: str) -> None:
        """Record one failed item in ``state``."""
        ...

    def finish(self, state: Any) -> Any:
        """The compact aggregate shipped back to the parent."""
        ...


def run_shard(item_fn: Callable[[int], Any], reducer: ShardReducer,
              start: int, stop: int, item_retries: int = 0) -> Any:
    """Execute items ``start..stop`` in order, reduced to one aggregate.

    Runs inside the worker (or in-process on the serial path — same
    code, same result).  A failing item is retried ``item_retries``
    times, then recorded via :meth:`ShardReducer.failure`; it never
    fails the whole shard.
    """
    state = reducer.fresh()
    for index in range(start, stop):
        attempts = 0
        while True:
            attempts += 1
            try:
                value = item_fn(index)
            except Exception as exc:
                if attempts <= item_retries:
                    continue
                reducer.failure(state, index, _describe_error(exc))
                break
            reducer.item(state, index, value)
            break
    return reducer.finish(state)


@dataclass(frozen=True)
class ShardPlan:
    """How a batch of ``count`` items was cut into shard tasks."""

    count: int
    shard_size: int
    slices: tuple[tuple[int, int], ...]

    @property
    def num_shards(self) -> int:
        return len(self.slices)


def shard_tasks(item_fn: Callable[[int], Any], reducer: ShardReducer,
                count: int, shard_size: int,
                key_fn: Callable[[int, int], str | None] | None = None,
                label: str = "shard", cpu_bound: bool = True,
                cost_hint_s: float | None = None,
                item_retries: int = 0) -> tuple[ShardPlan, list[TaskSpec]]:
    """Build one :class:`TaskSpec` per shard of ``range(count)``.

    Args:
        item_fn: Picklable per-item callable (index -> result).
        reducer: Worker-side fold; see :class:`ShardReducer`.
        count: Number of items.
        shard_size: Items per shard (the last shard may be shorter).
        key_fn: Optional ``(start, stop) -> cache key`` for shard-level
            result caching.
        label: Task label prefix; shards are labelled
            ``{label}[start:stop]``.
        cpu_bound: Forwarded to :class:`TaskSpec`.
        cost_hint_s: Estimated wall time *per item*; the shard's hint is
            ``cost_hint_s * len(shard)``.
        item_retries: In-worker retries per item before the item is
            recorded as failed.
    """
    slices = shard_slices(count, shard_size)
    tasks = [
        TaskSpec(fn=run_shard,
                 args=(item_fn, reducer, start, stop, item_retries),
                 key=key_fn(start, stop) if key_fn is not None else None,
                 label=f"{label}[{start}:{stop}]",
                 cpu_bound=cpu_bound,
                 cost_hint_s=(None if cost_hint_s is None
                              else cost_hint_s * (stop - start)))
        for start, stop in slices
    ]
    plan = ShardPlan(count=count, shard_size=shard_size,
                     slices=tuple(slices))
    return plan, tasks


__all__ = [
    "ShardPlan",
    "ShardReducer",
    "run_shard",
    "shard_slices",
    "shard_tasks",
]
