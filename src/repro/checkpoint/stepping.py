"""The stepping protocol: experiments as resumable state machines.

Every registered experiment implements three methods on top of its
existing ``run()``:

* ``begin() -> state`` — build the full run state (controller,
  workload generators, RNG streams, accumulators) without advancing it.
* ``advance(state) -> bool`` — perform one unit of work (a simulation
  step, one sweep cell, one fleet shard...); returns True while more
  work remains.  Must be a no-op returning False once the run is
  complete, so resuming from a final checkpoint is safe.
* ``finish(state) -> result`` — summarise the state into the same
  result object ``run()`` returns.

``run()`` itself is (re)written as exactly
``finish(drive(begin()))`` wherever feasible, so the stepped and
monolithic paths cannot drift: bit-identity of a restored run is a
property of construction, then *proven* by the restore-at-step-k suite
in ``tests/checkpoint/``.

The run *state* object must be picklable; :func:`checkpoint_state`
captures it, :func:`resume_state` reconstructs it, and
:func:`run_with_checkpoints` strings those into a preemptible run for
``repro exp --checkpoint/--resume``.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Protocol, runtime_checkable

from repro.checkpoint.state import (Checkpoint, CheckpointError,
                                    load_checkpoint, restore,
                                    save_checkpoint, snapshot)


@runtime_checkable
class Stepper(Protocol):
    """An experiment that can run one unit of work at a time."""

    name: str

    def begin(self) -> Any:
        """Build and return the initial run state."""

    def advance(self, state: Any) -> bool:
        """Do one unit of work; True while more remains."""

    def finish(self, state: Any) -> Any:
        """Summarise a completed (or to-be-abandoned) run state."""


def run_stepped(stepper: Stepper) -> Any:
    """Drive a stepper from ``begin`` to ``finish``; returns the result."""
    state = stepper.begin()
    while stepper.advance(state):
        pass
    return stepper.finish(state)


def run_to_step(stepper: Stepper, steps: int) -> tuple[Any, int, bool]:
    """Advance a fresh run by up to ``steps`` units.

    Returns ``(state, steps_taken, more)`` where ``more`` is False when
    the run completed before (or exactly at) the requested step count.
    """
    state = stepper.begin()
    taken = 0
    more = True
    while more and taken < steps:
        more = stepper.advance(state)
        taken += 1
    return state, taken, more


def checkpoint_state(stepper: Stepper, state: Any, step: int,
                     meta: dict[str, Any] | None = None) -> Checkpoint:
    """Capture a stepper's run state as a versioned checkpoint."""
    return snapshot(stepper.name, step, state, meta=meta)


def resume_state(stepper: Stepper, checkpoint: Checkpoint) -> Any:
    """Reconstruct a run state captured from the same experiment kind."""
    if checkpoint.kind != stepper.name:
        raise CheckpointError(
            f"checkpoint is for {checkpoint.kind!r}, "
            f"not {stepper.name!r}")
    return restore(checkpoint)


def run_with_checkpoints(stepper: Stepper, path: str | None = None,
                         every: int = 0, resume: bool = False,
                         on_step: Callable[[int], None] | None = None) -> Any:
    """Run a stepper to completion, periodically persisting its state.

    Args:
        stepper: The experiment to drive.
        path: Checkpoint file.  ``None`` disables persistence (the run
            is then just :func:`run_stepped`).
        every: Save every N advances (0 = only on completion).
        resume: Start from the state in ``path`` when it exists; a
            missing file falls back to a fresh ``begin()``.
        on_step: Optional progress callback, called with the step count
            after each advance.

    Returns:
        The experiment result, exactly as ``run()`` would produce it.
    """
    step = 0
    state = None
    if resume and path is not None and os.path.exists(path):
        checkpoint = load_checkpoint(path)
        state = resume_state(stepper, checkpoint)
        step = checkpoint.step
    if state is None:
        state = stepper.begin()
    more = True
    while more:
        more = stepper.advance(state)
        step += 1
        if on_step is not None:
            on_step(step)
        if path is not None and ((every and step % every == 0) or not more):
            save_checkpoint(checkpoint_state(stepper, state, step), path)
    return stepper.finish(state)


__all__ = [
    "Stepper",
    "run_stepped",
    "run_to_step",
    "checkpoint_state",
    "resume_state",
    "run_with_checkpoints",
]
