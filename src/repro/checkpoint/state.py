"""The checkpoint container: versioned, content-hashed state blobs.

A :class:`Checkpoint` wraps one pickled run-state payload together with
the format version, the experiment kind, the step count at capture, and
the SHA-256 of the blob.  The hash is what makes prefix sharing sound:
:func:`repro.exec.hashing.task_key` folds it into warm-started task keys
so a cache entry can never be confused with a cold-started run of a
different prefix (see docs/CHECKPOINT.md).

Pickle is the serialisation substrate deliberately: the controller
object graph is cycle- and alias-heavy (per-AU mapping slices alias the
flat forward table, migration requests are shared between queues and
the conflict index, both policy hosts share one plug-in instance), and
pickle's memo preserves every one of those identities.  The one graph
fix-up this needs lives in
:meth:`repro.core.tables.TranslationTables.__setstate__`, which rebuilds
the numpy views after load.

Checkpoints are *not* a cross-version interchange format: a blob is
only guaranteed to load in the repo revision that wrote it, and
:data:`CHECKPOINT_VERSION` gates every restore so a stale file fails
loudly instead of silently misbehaving.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Any

#: Format version; bump whenever the serialised state layout changes.
CHECKPOINT_VERSION = 1

#: Identifies a checkpoint file's header dict on disk.
_FILE_FORMAT = "repro-checkpoint"


class CheckpointError(RuntimeError):
    """A checkpoint could not be created, loaded, or restored."""


@dataclass(frozen=True)
class Checkpoint:
    """One captured run state.

    Attributes:
        kind: Experiment name the state belongs to (registry key).
        step: Number of ``advance()`` calls completed at capture time.
        blob: The pickled payload.
        version: Format version the blob was written with.
        meta: Free-form context (config hash, capture host, ...).
    """

    kind: str
    step: int
    blob: bytes
    version: int = CHECKPOINT_VERSION
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def content_hash(self) -> str:
        """SHA-256 of the blob; the identity warm-start keys fold in."""
        return hashlib.sha256(self.blob).hexdigest()


def snapshot(kind: str, step: int, payload: Any,
             meta: dict[str, Any] | None = None) -> Checkpoint:
    """Capture ``payload`` (a stepper's run state) as a checkpoint."""
    try:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(
            f"run state of {kind!r} is not serialisable: {exc}") from exc
    return Checkpoint(kind=kind, step=step, blob=blob, meta=dict(meta or {}))


def restore(checkpoint: Checkpoint) -> Any:
    """Reconstruct the run state captured by :func:`snapshot`.

    Raises:
        CheckpointError: on a version mismatch or a corrupt blob.
    """
    if checkpoint.version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {checkpoint.version} != supported "
            f"{CHECKPOINT_VERSION}; re-run from scratch")
    try:
        return pickle.loads(checkpoint.blob)
    except Exception as exc:
        raise CheckpointError(f"corrupt checkpoint blob: {exc}") from exc


def save_checkpoint(checkpoint: Checkpoint, path: str) -> None:
    """Write a checkpoint to ``path`` atomically (tmp file + rename)."""
    header = {
        "format": _FILE_FORMAT,
        "version": checkpoint.version,
        "kind": checkpoint.kind,
        "step": checkpoint.step,
        "sha256": checkpoint.content_hash,
        "meta": dict(checkpoint.meta),
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".ckpt.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump((header, checkpoint.blob), handle,
                        protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_checkpoint(path: str) -> Checkpoint:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Raises:
        CheckpointError: when the file is not a checkpoint, was written
            by a different format version, or fails its integrity hash.
    """
    try:
        with open(path, "rb") as handle:
            header, blob = pickle.load(handle)
    except FileNotFoundError:
        raise
    except Exception as exc:
        raise CheckpointError(f"{path} is not a checkpoint file: {exc}") \
            from exc
    if not isinstance(header, dict) or header.get("format") != _FILE_FORMAT:
        raise CheckpointError(f"{path} is not a checkpoint file")
    if header.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path} has checkpoint version {header.get('version')}, "
            f"this build supports {CHECKPOINT_VERSION}")
    digest = hashlib.sha256(blob).hexdigest()
    if digest != header.get("sha256"):
        raise CheckpointError(f"{path} failed its integrity hash")
    return Checkpoint(kind=header["kind"], step=header["step"], blob=blob,
                      version=header["version"],
                      meta=dict(header.get("meta", {})))


__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "snapshot",
    "restore",
    "save_checkpoint",
    "load_checkpoint",
]
