"""Tests for the CloudSuite-like workload generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.units import GIB, MIB
from repro.workloads.cloudsuite import (PROFILES, SEGMENT_BYTES,
                                        STRIDE_BUCKET_EDGES,
                                        TRACED_BENCHMARKS, TraceGenerator,
                                        WorkloadProfile, make_trace)

#: Table 4 reference MAPKI values.
PAPER_MAPKI = {
    "data-analytics": 1.9, "data-caching": 1.5, "data-serving": 4.2,
    "django-workload": 0.8, "fb-oss-performance": 3.6,
    "graph-analytics": 6.5, "in-memory-analytics": 2.5,
    "media-streaming": 4.6, "web-search": 0.7, "web-serving": 0.7,
}


class TestProfiles:
    def test_all_ten_benchmarks_present(self):
        assert set(PROFILES) == set(PAPER_MAPKI)

    def test_mapki_matches_table4(self):
        for name, profile in PROFILES.items():
            assert profile.mapki == PAPER_MAPKI[name]

    def test_stride_probs_normalised(self):
        for profile in PROFILES.values():
            assert sum(profile.stride_probs) == pytest.approx(1.0)

    def test_narrow_stride_benchmarks(self):
        """Figure 9: three benchmarks have narrow standalone strides."""
        for name in ("data-serving", "media-streaming", "web-serving"):
            assert PROFILES[name].stride_probs[-1] < 0.3
        for name in ("graph-analytics", "fb-oss-performance"):
            assert PROFILES[name].stride_probs[-1] > 0.5

    def test_traced_benchmarks_subset(self):
        assert set(TRACED_BENCHMARKS) <= set(PROFILES)
        assert len(TRACED_BENCHMARKS) == 8

    def test_invalid_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile(name="bad", mapki=1.0,
                            stride_probs=(0.5, 0.5), hot_segment_fraction=0.3)
        with pytest.raises(ConfigurationError):
            WorkloadProfile(name="bad", mapki=1.0,
                            stride_probs=(0.2,) * 5,
                            hot_segment_fraction=0.0)

    def test_bandwidth_model(self):
        profile = PROFILES["graph-analytics"]
        assert profile.bandwidth_gbs(4) == pytest.approx(
            2 * profile.bandwidth_gbs(2))
        assert profile.bandwidth_gbs(1) > \
            PROFILES["web-search"].bandwidth_gbs(1)


class TestGeneratorStructure:
    @pytest.fixture
    def generator(self):
        return TraceGenerator(PROFILES["data-caching"],
                              footprint_bytes=1 * GIB, seed=0)

    def test_tier_partition(self, generator):
        """Hot, warm, and frozen tiers partition the footprint."""
        total = (len(generator.hot_segments) + len(generator.warm_segments)
                 + len(generator.frozen_segments))
        assert total == generator.num_segments
        hot = set(generator.hot_segments.tolist())
        warm = set(generator.warm_segments.tolist())
        frozen = set(generator.frozen_segments.tolist())
        assert not (hot & warm) and not (hot & frozen) and not (warm & frozen)

    def test_frozen_subtiers(self, generator):
        deep = set(generator.deep_cold_segments.tolist())
        shallow = set(generator.shallow_frozen_segments.tolist())
        assert deep | shallow == set(generator.frozen_segments.tolist())
        assert not deep & shallow

    def test_hot_fraction_respected(self, generator):
        fraction = len(generator.hot_segments) / generator.num_segments
        assert fraction == pytest.approx(
            PROFILES["data-caching"].hot_segment_fraction, abs=0.01)

    def test_rates_sum_to_one(self, generator):
        rates = generator.segment_access_rates()
        assert rates.sum() == pytest.approx(1.0)
        assert (rates >= 0).all()

    def test_frozen_rates_zero(self, generator):
        rates = generator.segment_access_rates()
        assert rates[generator.frozen_segments].sum() == pytest.approx(0.0)

    def test_tiny_footprint_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceGenerator(PROFILES["data-caching"],
                           footprint_bytes=SEGMENT_BYTES)


class TestGeneratedTraces:
    def test_mapki_emerges(self):
        trace = make_trace("graph-analytics", 100_000, seed=1)
        assert trace.mapki == pytest.approx(6.5, rel=0.05)

    def test_addresses_within_footprint(self):
        footprint = 512 * MIB
        trace = make_trace("data-serving", 20_000,
                           footprint_bytes=footprint, seed=2)
        assert int(trace.addresses.max()) < footprint

    def test_deterministic_given_seed(self):
        a = make_trace("web-search", 5_000, seed=3)
        b = make_trace("web-search", 5_000, seed=3)
        assert np.array_equal(a.addresses, b.addresses)

    def test_different_seeds_differ(self):
        a = make_trace("web-search", 5_000, seed=3)
        b = make_trace("web-search", 5_000, seed=4)
        assert not np.array_equal(a.addresses, b.addresses)

    def test_write_fraction(self):
        trace = make_trace("data-caching", 50_000, seed=5)
        assert trace.write_fraction == pytest.approx(
            PROFILES["data-caching"].write_fraction, abs=0.02)

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            make_trace("no-such-benchmark", 100)

    def test_large_stride_share_emerges(self):
        trace = make_trace("graph-analytics", 100_000, seed=6)
        dist = trace.stride_distribution()
        assert dist[">=4194304"] == pytest.approx(
            PROFILES["graph-analytics"].stride_probs[-1], abs=0.05)

    def test_no_zero_strides(self):
        trace = make_trace("graph-analytics", 50_000, seed=7)
        strides = np.abs(np.diff(trace.addresses.astype(np.int64)))
        assert (strides == 0).mean() < 0.01

    def test_cold_fraction_2mb_near_figure10(self):
        """Averaged over the traced benchmarks: ~61.5 % cold at 2 MB."""
        fractions = []
        for index, name in enumerate(TRACED_BENCHMARKS[:4]):
            generator = TraceGenerator(PROFILES[name],
                                       footprint_bytes=2 * GIB, seed=index)
            n = int(20e6 * PROFILES[name].mapki / 1000 * 10)
            trace = generator.generate(n)
            fractions.append(trace.cold_segment_fraction(
                SEGMENT_BYTES, total_segments=generator.num_segments))
        assert 0.5 < float(np.mean(fractions)) < 0.75

    def test_cold_fraction_shrinks_at_4mb(self):
        """Figure 10: coarser remapping granularity loses cold segments."""
        generator = TraceGenerator(PROFILES["data-caching"],
                                   footprint_bytes=2 * GIB, seed=0)
        trace = generator.generate(300_000)
        cold_2mb = trace.cold_segment_fraction(
            SEGMENT_BYTES, total_segments=generator.num_segments)
        cold_4mb = trace.cold_segment_fraction(
            2 * SEGMENT_BYTES, total_segments=generator.num_segments // 2)
        assert cold_4mb < cold_2mb
