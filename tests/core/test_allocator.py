"""Tests for the segment allocator's balancing policy (Section 4.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.allocator import SegmentAllocator
from repro.dram.geometry import DramGeometry
from repro.errors import AllocationError
from repro.units import MIB


@pytest.fixture
def allocator():
    # 4 channels x 4 ranks x 64 MiB rank = 32 segments/rank.
    return SegmentAllocator(DramGeometry(ranks_per_channel=4,
                                         rank_bytes=64 * MIB))


class TestChannelBalance:
    def test_equal_segments_per_channel(self, allocator):
        dsns = allocator.allocate(16)
        per_channel = [sum(1 for dsn in dsns
                           if allocator.rank_of_dsn(dsn)[0] == channel)
                       for channel in range(4)]
        assert per_channel == [4, 4, 4, 4]

    def test_uneven_request_rejected(self, allocator):
        with pytest.raises(AllocationError):
            allocator.allocate(5)

    @given(st.integers(1, 8))
    @settings(max_examples=20)
    def test_balance_property(self, blocks):
        allocator = SegmentAllocator(DramGeometry(ranks_per_channel=4,
                                                  rank_bytes=64 * MIB))
        dsns = allocator.allocate(blocks * 4)
        for channel in range(4):
            count = sum(1 for dsn in dsns
                        if allocator.rank_of_dsn(dsn)[0] == channel)
            assert count == blocks


class TestPackingPriority:
    def test_most_utilized_rank_first(self, allocator):
        """Allocations pack into already-used ranks before opening new ones."""
        first = allocator.allocate(8)
        second = allocator.allocate(8)
        ranks = {allocator.rank_of_dsn(dsn) for dsn in first + second}
        # 16 segments over 4 channels = 4 per channel: all fit in one rank
        # per channel.
        assert len(ranks) == 4

    def test_spills_to_next_rank_when_full(self, allocator):
        allocator.allocate(32 * 4)  # fill one rank per channel exactly
        dsns = allocator.allocate(4)
        ranks = {allocator.rank_of_dsn(dsn)[1] for dsn in dsns}
        assert ranks == {1}

    def test_allowed_ranks_respected(self, allocator):
        allowed = {(channel, 2) for channel in range(4)}
        dsns = allocator.allocate(8, allowed)
        assert all(allocator.rank_of_dsn(dsn)[1] == 2 for dsn in dsns)

    def test_insufficient_allowed_capacity(self, allocator):
        allowed = {(channel, 0) for channel in range(4)}
        with pytest.raises(AllocationError):
            allocator.allocate(4 * 33, allowed)  # > one rank per channel

    def test_failed_allocation_leaves_state_unchanged(self, allocator):
        before = allocator.free_count()
        with pytest.raises(AllocationError):
            allocator.allocate(4 * 33, {(c, 0) for c in range(4)})
        assert allocator.free_count() == before


class TestAccounting:
    def test_usage_tracks_utilization(self, allocator):
        allocator.allocate(8)
        usage = allocator.usage((0, 0))
        assert usage.allocated == 2
        assert usage.free == 30
        assert usage.utilization == pytest.approx(2 / 32)
        assert usage.capacity == 32

    def test_free_returns_segments(self, allocator):
        dsns = allocator.allocate(8)
        allocator.free(dsns)
        assert allocator.allocated_count() == 0
        assert allocator.free_count() == 4 * 4 * 32

    def test_double_free_rejected(self, allocator):
        dsns = allocator.allocate(4)
        allocator.free(dsns[:1])
        with pytest.raises(AllocationError):
            allocator.free(dsns[:1])

    def test_is_allocated(self, allocator):
        dsns = allocator.allocate(4)
        assert allocator.is_allocated(dsns[0])
        allocator.free(dsns)
        assert not allocator.is_allocated(dsns[0])

    def test_channel_allocated(self, allocator):
        allocator.allocate(8)
        assert allocator.channel_allocated(0) == 2


class TestSpecificReservations:
    def test_reserve_specific(self, allocator):
        dsn = allocator.free_dsns_in_rank((1, 1))[0]
        allocator.reserve_specific(dsn)
        assert allocator.is_allocated(dsn)

    def test_reserve_allocated_rejected(self, allocator):
        dsns = allocator.allocate(4)
        with pytest.raises(AllocationError):
            allocator.reserve_specific(dsns[0])

    def test_allocate_in_rank(self, allocator):
        dsns = allocator.allocate_in_rank((2, 3), 5)
        assert len(dsns) == 5
        assert all(allocator.rank_of_dsn(dsn) == (2, 3) for dsn in dsns)

    def test_allocate_in_rank_capacity(self, allocator):
        with pytest.raises(AllocationError):
            allocator.allocate_in_rank((2, 3), 33)

    def test_move_allocation(self, allocator):
        old = allocator.allocate_in_rank((0, 0), 1)[0]
        new = allocator.allocate_in_rank((0, 1), 1)[0]
        allocator.move_allocation(old, new)
        assert not allocator.is_allocated(old)
        assert allocator.is_allocated(new)

    def test_move_to_unreserved_rejected(self, allocator):
        old = allocator.allocate_in_rank((0, 0), 1)[0]
        free = allocator.free_dsns_in_rank((0, 1))[0]
        with pytest.raises(AllocationError):
            allocator.move_allocation(old, free)


class TestConservation:
    @given(st.lists(st.sampled_from(["alloc", "free"]), min_size=1,
                    max_size=30))
    @settings(max_examples=25)
    def test_allocated_plus_free_is_constant(self, ops):
        allocator = SegmentAllocator(DramGeometry(ranks_per_channel=4,
                                                  rank_bytes=64 * MIB))
        total = allocator.free_count()
        live: list[int] = []
        for op in ops:
            if op == "alloc":
                try:
                    live.extend(allocator.allocate(4))
                except AllocationError:
                    pass
            elif live:
                allocator.free([live.pop()])
            assert allocator.allocated_count() + allocator.free_count() \
                == total
