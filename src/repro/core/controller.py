"""The DTL controller: the library's primary public entry point.

:class:`DtlController` wires together every DTL subsystem — address
translation, segment allocation, migration, rank-level power-down, and
hotness-aware self-refresh — behind a small API:

* :meth:`allocate_vm` / :meth:`deallocate_vm` — the host-facing memory
  allocation interface (in AU multiples, as cloud control planes do).
* :meth:`access` — the CXL load/store path: HPA in, latency and routing out.
* :meth:`tick` / :meth:`end_window` — time hooks the simulators call.

Everything below this interface is invisible to the "host": no OS, MC, or
application changes are modelled, which is the paper's deployment story.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.addressing import (DeviceAddressLayout, HostAddressLayout,
                                   SegmentLocation)
from repro.core.allocator import SegmentAllocator
from repro.core.config import DtlConfig
from repro.core.migration import MigrationEngine, WriteRouting
from repro.core.power_down import PowerTransition, RankPowerDownPolicy
from repro.core.retirement import RankRetirementManager, RetirementRecord
from repro.core.self_refresh import HotnessSelfRefreshPolicy
from repro.core.tables import TranslationTables
from repro.core.translation import TranslationEngine
from repro.dram.device import DramDevice
from repro.dram.power import PowerState
from repro.dram.timing import CXL_MEMORY_LATENCY_NS
from repro.errors import AllocationError, PerformanceWarning
from repro.policies import Policy, PolicyConfig, make_policy
from repro.telemetry import (EventKind, EventTrace, MetricsRegistry,
                             Snapshot, TraceEvent)
from repro.units import CACHELINE_BYTES

#: Scalar :meth:`DtlController.access` calls after which the controller
#: suggests :meth:`DtlController.access_batch` (once, via
#: :class:`~repro.errors.PerformanceWarning`).
SCALAR_ACCESS_WARN_THRESHOLD = 100_000


@dataclass(frozen=True)
class VmHandle:
    """A live VM's reservation on the device."""

    vm_id: int
    host_id: int
    au_ids: tuple[int, ...]
    reserved_bytes: int


@dataclass
class AccessResult:
    """Outcome of one host memory access through the DTL."""

    hpa: int
    dsn: int
    dpa: int
    channel: int
    rank: int
    latency_ns: float
    smc_l1_hit: bool
    smc_l2_hit: bool
    wake_penalty_ns: float
    routed_to_new_dsn: bool


@dataclass
class BatchAccessResult:
    """Outcome of one vectorised batch of host accesses (array-of-struct).

    Every field is an array with one element per input HPA, in input
    order; ``result[i]`` fields equal the :class:`AccessResult` the
    scalar path would have produced for the same access.
    """

    hpas: np.ndarray
    dsns: np.ndarray
    dpas: np.ndarray
    channels: np.ndarray
    ranks: np.ndarray
    latency_ns: np.ndarray
    smc_l1_hits: np.ndarray
    smc_l2_hits: np.ndarray
    wake_penalty_ns: np.ndarray
    routed_to_new_dsn: np.ndarray

    def __len__(self) -> int:
        return len(self.hpas)

    @property
    def total_latency_ns(self) -> float:
        """Sum of per-access latencies."""
        return float(self.latency_ns.sum())


class DtlController:
    """Software-transparent DRAM translation layer in a CXL controller."""

    def __init__(self, config: DtlConfig | None = None,
                 cxl_latency_ns: float = CXL_MEMORY_LATENCY_NS,
                 metrics: MetricsRegistry | None = None,
                 trace: EventTrace | None = None):
        self.config = config or DtlConfig()
        geometry = self.config.geometry
        self.geometry = geometry
        self.cxl_latency_ns = cxl_latency_ns
        # One registry + one event trace shared by every subsystem below.
        # Pass MetricsRegistry.null() / EventTrace.disabled() to run the
        # datapath with zero telemetry overhead (see docs/PERF.md).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace = trace if trace is not None else EventTrace()
        self.host_layout = HostAddressLayout(
            geometry, au_bytes=self.config.au_bytes,
            max_hosts=self.config.max_hosts)
        self.device_layout = DeviceAddressLayout(geometry)
        self.device = DramDevice(geometry=geometry)
        self.device.attach_telemetry(self.metrics, self.trace)
        self.tables = TranslationTables(self.host_layout)
        self.translation = TranslationEngine(
            self.host_layout, self.tables, cache_config=self.config.cache,
            registry=self.metrics, trace=self.trace)
        self.allocator = SegmentAllocator(geometry)
        self.migration = MigrationEngine(
            geometry, on_complete=self._on_migration_complete,
            registry=self.metrics, trace=self.trace)
        # One PolicyConfig + one shared Policy instance for both hosts, so
        # idle-gap observations made on the power-down side inform
        # self-refresh demotions and vice versa.
        self.policy_config = PolicyConfig(
            name=self.config.policy,
            group_granularity=self.config.group_granularity,
            min_active_groups=self.config.min_active_groups,
            background_migration=self.config.background_migration,
            window_ns=self.config.window_ns,
            profiling_threshold_ns=self.config.profiling_threshold_ns,
            tsp_scan_limit=self.config.tsp_scan_limit,
            victim_granularity=self.config.sr_victim_granularity,
            enable_planning=self.config.sr_planning)
        self.policy: Policy | None = None
        if self.config.enable_power_down or self.config.enable_self_refresh:
            self.policy = make_policy(self.policy_config)
        self.power_down: RankPowerDownPolicy | None = None
        if self.config.enable_power_down:
            self.power_down = RankPowerDownPolicy(
                self.device, self.allocator, self.tables, self.migration,
                self.policy_config, policy=self.policy,
                registry=self.metrics, trace=self.trace)
        self.self_refresh: HotnessSelfRefreshPolicy | None = None
        if self.config.enable_self_refresh:
            self.self_refresh = HotnessSelfRefreshPolicy(
                self.device, self.allocator, self.tables, self.translation,
                self.migration, self.policy_config, policy=self.policy,
                registry=self.metrics, trace=self.trace)
        self.retirement: RankRetirementManager | None = None
        if self.power_down is not None:
            self.retirement = RankRetirementManager(
                self.device, self.allocator, self.tables, self.migration,
                self.power_down)
        # Plain integer (not itertools.count) so VM-ID progression is part
        # of the checkpointable state.
        self._next_vm_id = 1
        self._vms: dict[int, VmHandle] = {}
        # Per-host free-AU queues (Table 5 lists a "free AU queue").
        self._free_au_ids: dict[int, deque[int]] = {}
        self._accesses = self.metrics.counter("dtl.accesses")
        self._writes = self.metrics.counter("dtl.writes")
        self._redirects = self.metrics.counter("dtl.redirected_writes")
        self._access_latency = self.metrics.histogram("dtl.access_latency_ns")
        self._scalar_access_calls = 0
        self._scalar_access_warned = False
        # Armed fault injector (None = zero-overhead no-op hooks; see
        # src/repro/faults/ and docs/FAULTS.md).
        self._faults = None

    # -- fault injection ---------------------------------------------------------

    def arm_faults(self, injector) -> None:
        """Arm a :class:`~repro.faults.injector.FaultInjector` here and on
        every subsystem below.  Pass ``None`` (or call
        :meth:`disarm_faults`) to restore the zero-overhead fast path."""
        self._faults = injector
        self.migration.arm_faults(injector)
        if self.power_down is not None:
            self.power_down.arm_faults(injector)
        if self.self_refresh is not None:
            self.self_refresh.arm_faults(injector)

    def disarm_faults(self) -> None:
        """Detach any armed fault injector from the whole datapath."""
        self.arm_faults(None)

    @property
    def access_count(self) -> int:
        """Total host accesses served (registry counter view)."""
        return self._accesses.value

    @access_count.setter
    def access_count(self, value: int) -> None:
        self._accesses.set(value)

    # -- VM lifecycle -----------------------------------------------------------

    def _free_aus(self, host_id: int) -> deque[int]:
        if host_id not in self._free_au_ids:
            self.tables.register_host(host_id)
            self._free_au_ids[host_id] = deque(
                range(self.host_layout.max_aus_per_host))
        return self._free_au_ids[host_id]

    def aus_for_bytes(self, num_bytes: int) -> int:
        """Number of AUs needed to reserve ``num_bytes``."""
        au = self.config.au_bytes
        return max(1, -(-num_bytes // au))

    def allocate_vm(self, host_id: int, reserved_bytes: int,
                    now_s: float = 0.0) -> VmHandle:
        """Reserve memory for a new VM (rounded up to whole AUs).

        If the active ranks lack capacity, powered-down rank-groups exit
        MPSM first (Section 3.3 step 5-6).
        """
        num_aus = self.aus_for_bytes(reserved_bytes)
        segments_needed = num_aus * self.host_layout.segments_per_au
        if self.power_down is not None:
            self.power_down.ensure_capacity(segments_needed, now_s)
            allowed = self.power_down.active_rank_ids()
        else:
            allowed = None
        free_aus = self._free_aus(host_id)
        if len(free_aus) < num_aus:
            raise AllocationError(
                f"host {host_id} has no free AU IDs for {num_aus} AUs")
        au_ids = tuple(free_aus.popleft() for _ in range(num_aus))
        try:
            for au_id in au_ids:
                self.tables.allocate_au(host_id, au_id)
                dsns = self.allocator.allocate(
                    self.host_layout.segments_per_au, allowed)
                self._wake_ranks_holding(dsns, now_s)
                self.tables.map_au_segments(
                    host_id, au_id, np.asarray(dsns, dtype=np.int64))
        except AllocationError:
            # Unwind every AU this call touched: segments mapped for the
            # AUs that completed (and the AU-table slice of the one that
            # failed partway) must be freed, or they leak forever.
            touched = set(self.tables.au_ids(host_id)) & set(au_ids)
            for au_id in touched:
                dsns = self.tables.free_au(host_id, au_id)
                self.allocator.free(dsns)
            for au_id in au_ids:
                free_aus.appendleft(au_id)
            raise
        vm_id = self._next_vm_id
        self._next_vm_id += 1
        vm = VmHandle(vm_id=vm_id, host_id=host_id, au_ids=au_ids,
                      reserved_bytes=num_aus * self.config.au_bytes)
        self._vms[vm.vm_id] = vm
        return vm

    def deallocate_vm(self, vm: VmHandle,
                      now_s: float = 0.0) -> list[PowerTransition]:
        """Release a VM's memory and run the power-down policy.

        Returns the power transitions (if any) the deallocation enabled.
        """
        if vm.vm_id not in self._vms:
            raise AllocationError(f"VM {vm.vm_id} is not live")
        segments_per_au = self.host_layout.segments_per_au
        au_offsets = np.arange(segments_per_au, dtype=np.int64)
        for au_id in vm.au_ids:
            hsns = self.host_layout.pack_hsn_batch(
                vm.host_id, np.full(segments_per_au, au_id, dtype=np.int64),
                au_offsets)
            for hsn in hsns:
                self.translation.invalidate(int(hsn))
            dsns = self.tables.free_au(vm.host_id, au_id)
            self.allocator.free(dsns)
            self._free_aus(vm.host_id).append(au_id)
        del self._vms[vm.vm_id]
        if self.power_down is not None:
            return self.power_down.maybe_power_down(now_s)
        return []

    @property
    def live_vms(self) -> list[VmHandle]:
        """Currently allocated VMs."""
        return list(self._vms.values())

    def vm_handle(self, vm_id: int) -> VmHandle:
        """Look up a live VM by ID (raises ``AllocationError`` if gone)."""
        try:
            return self._vms[vm_id]
        except KeyError:
            raise AllocationError(f"VM {vm_id} is not allocated") from None

    def reserved_bytes(self) -> int:
        """Total memory reserved by live VMs."""
        return self.allocator.allocated_count() * self.geometry.segment_bytes

    # -- access path -------------------------------------------------------------

    def access(self, host_id: int, hpa: int, is_write: bool = False,
               now_ns: float = 0.0) -> AccessResult:
        """One host load/store through the CXL + DTL datapath."""
        # Only user-initiated access() calls count toward the
        # PerformanceWarning threshold.  Batch-internal scalar replays
        # (fault-plan replay, self-refresh event replay) go through
        # _access_one / policy hooks directly and must never trip the
        # "switch to access_batch" warning — the caller already did.
        self._scalar_access_calls += 1
        if (self._scalar_access_calls > SCALAR_ACCESS_WARN_THRESHOLD
                and not self._scalar_access_warned):
            self._scalar_access_warned = True
            warnings.warn(
                f"over {SCALAR_ACCESS_WARN_THRESHOLD} scalar access() calls "
                "on one controller; access_batch() serves long traces "
                "orders of magnitude faster (see docs/PERF.md)",
                PerformanceWarning, stacklevel=2)
        return self._access_one(host_id, hpa, is_write, now_ns)

    def _access_one(self, host_id: int, hpa: int, is_write: bool,
                    now_ns: float) -> AccessResult:
        """The :meth:`access` body (also the batch path's scalar replay)."""
        hsn_local = self.host_layout.hsn_of_hpa(hpa)
        # HPAs arriving from a host are host-local; fold in the host ID.
        _, au_id, au_offset = self._split_local_hsn(hsn_local)
        hsn = self.host_layout.pack_hsn(host_id, au_id, au_offset)
        dsn, xlat_ns, l1_hit, l2_hit = self.translation.translate_hsn(hsn)
        fault_ns = 0.0
        if self._faults is not None:
            # Hooks: smc.lookup (entry corruption) and cxl.access (link
            # error/stall); the corruption only affects *later* lookups.
            self._faults.on_smc_lookup(hsn, self.translation)
            fault_ns = self._faults.on_cxl_access(now_ns)
        routed_new = False
        if is_write:
            offset = self.host_layout.offset_of_hpa(hpa)
            line_index = offset // CACHELINE_BYTES
            routing = self.migration.on_foreground_write(dsn, line_index)
            if routing is WriteRouting.NEW_DSN:
                request = self.migration.request_for(dsn)
                if request is not None:
                    dsn = request.new_dsn
                    routed_new = True
        wake_ns = 0.0
        location = self.device_layout.unpack_dsn(dsn)
        if self.self_refresh is not None:
            wake_ns = self.self_refresh.on_access(dsn, now_ns)
        else:
            self.device.rank(location.channel, location.rank).record_access()
        if self._faults is not None:
            # Hook: dram.access (per-rank ECC error accounting).
            self._faults.on_dram_access(location.channel, location.rank,
                                        self.device, now_s=now_ns / 1e9)
        dpa = self.device_layout.dpa_of(
            dsn, self.host_layout.offset_of_hpa(hpa))
        latency_ns = self.cxl_latency_ns + xlat_ns + wake_ns + fault_ns
        self._accesses.inc()
        if is_write:
            self._writes.inc()
        if routed_new:
            self._redirects.inc()
        self._access_latency.observe(latency_ns)
        self.trace.record(EventKind.ACCESS, time=now_ns, hsn=hsn, dsn=dsn,
                          write=is_write, latency_ns=latency_ns)
        return AccessResult(
            hpa=hpa, dsn=dsn, dpa=dpa, channel=location.channel,
            rank=location.rank,
            latency_ns=latency_ns,
            smc_l1_hit=l1_hit, smc_l2_hit=l2_hit, wake_penalty_ns=wake_ns,
            routed_to_new_dsn=routed_new)

    def access_batch(self, host_id: int, hpas: np.ndarray,
                     writes: np.ndarray | None = None,
                     now_ns: float = 0.0) -> BatchAccessResult:
        """Vectorised :meth:`access` over a whole request array.

        Bit-identical to calling :meth:`access` once per element in
        order: DSNs, hit classes, per-access latencies, wake penalties,
        write routing, cache/counter state, and power states all match
        the scalar loop (float *totals* and trace buffer ordering can
        differ; see docs/PERF.md).  Only two conditions fall back to
        scalar replay, and only for the affected subset: writes to
        segments with a tracked migration, and accesses on channels whose
        self-refresh state machine could change mid-batch.
        """
        hpas = np.asarray(hpas, dtype=np.int64)
        n = len(hpas)
        if writes is None:
            writes = np.zeros(n, dtype=bool)
        else:
            writes = np.asarray(writes, dtype=bool)
            if len(writes) != n:
                raise ValueError(
                    f"writes length {len(writes)} != hpas length {n}")
        # An *active* fault plan can perturb any access (ECC, link faults,
        # SMC corruption), so the whole batch replays through the scalar
        # protocol in order.  Checked once per batch; an armed injector
        # whose plan has no specs keeps the exact vectorised path so its
        # telemetry stays bit-identical to an unarmed run.
        if self._faults is not None and self._faults.active:
            return self._replay_batch_scalar(host_id, hpas, writes, now_ns)
        host = self.host_layout
        hsn_locals, offsets = host.split_hpa_batch(hpas)
        au_ids = hsn_locals // host.segments_per_au
        au_offsets = hsn_locals % host.segments_per_au
        hsns = host.pack_hsn_batch(host_id, au_ids, au_offsets)
        dsns, xlat_ns, l1_hits, l2_hits = \
            self.translation.translate_hsn_batch(hsns)
        routed_new = np.zeros(n, dtype=bool)
        # Write routing: segments without a tracked migration route
        # OLD_DSN with no side effects, so only writes hitting tracked
        # segments run the conflict protocol, and those run it in bulk —
        # the engine collapses the order-sensitivity (one abort per
        # request, completion-bit redirects) internally.
        if writes.any() and self.migration.has_tracked_requests:
            tracked = np.fromiter(self.migration.tracked_dsns(),
                                  dtype=np.int64)
            hot = np.nonzero(writes & np.isin(dsns, tracked))[0]
            if len(hot):
                routed = self.migration.on_foreground_write_batch(
                    dsns[hot], offsets[hot] // CACHELINE_BYTES)
                if routed.any():
                    redirected = hot[routed]
                    dsns[redirected] = np.fromiter(
                        (self.migration.request_for(int(dsn)).new_dsn
                         for dsn in dsns[redirected]),
                        dtype=np.int64, count=len(redirected))
                    routed_new[redirected] = True
        channels, ranks, _ = self.device_layout.unpack_dsn_batch(dsns)
        if self.self_refresh is not None:
            wake_ns = self.self_refresh.on_access_batch(dsns, now_ns)
        else:
            self.device.record_accesses(channels, ranks)
            wake_ns = np.zeros(n, dtype=np.float64)
        dpas = self.device_layout.dpa_of_batch(dsns, offsets)
        latency_ns = self.cxl_latency_ns + xlat_ns + wake_ns
        self._accesses.inc(n)
        self._writes.inc(int(writes.sum()))
        self._redirects.inc(int(routed_new.sum()))
        self._access_latency.observe_batch(latency_ns)
        if self.trace.enabled:
            start = n - min(n, self.trace.capacity)
            tail = [TraceEvent(kind=EventKind.ACCESS, time=now_ns,
                               data={"hsn": int(hsns[i]),
                                     "dsn": int(dsns[i]),
                                     "write": bool(writes[i]),
                                     "latency_ns": float(latency_ns[i])})
                    for i in range(start, n)]
            self.trace.record_tail(EventKind.ACCESS, n, tail)
        return BatchAccessResult(
            hpas=hpas, dsns=dsns, dpas=dpas, channels=channels, ranks=ranks,
            latency_ns=latency_ns, smc_l1_hits=l1_hits, smc_l2_hits=l2_hits,
            wake_penalty_ns=wake_ns, routed_to_new_dsn=routed_new)

    def _replay_batch_scalar(self, host_id: int, hpas: np.ndarray,
                             writes: np.ndarray,
                             now_ns: float) -> BatchAccessResult:
        """Element-wise replay of a batch under an active fault plan."""
        results = [self._access_one(host_id, int(hpa), bool(write), now_ns)
                   for hpa, write in zip(hpas, writes)]
        return BatchAccessResult(
            hpas=hpas,
            dsns=np.array([r.dsn for r in results], dtype=np.int64),
            dpas=np.array([r.dpa for r in results], dtype=np.int64),
            channels=np.array([r.channel for r in results], dtype=np.int64),
            ranks=np.array([r.rank for r in results], dtype=np.int64),
            latency_ns=np.array([r.latency_ns for r in results],
                                dtype=np.float64),
            smc_l1_hits=np.array([r.smc_l1_hit for r in results],
                                 dtype=bool),
            smc_l2_hits=np.array([r.smc_l2_hit for r in results],
                                 dtype=bool),
            wake_penalty_ns=np.array([r.wake_penalty_ns for r in results],
                                     dtype=np.float64),
            routed_to_new_dsn=np.array([r.routed_to_new_dsn
                                        for r in results], dtype=bool))

    def _wake_ranks_holding(self, dsns: list[int], now_s: float) -> None:
        """Exit self-refresh on any rank receiving fresh allocations.

        The VM's initialisation writes follow immediately, and a rank in
        self-refresh cannot accept commands.
        """
        ranks = set(self.allocator.ranks_of_dsns(dsns))
        for rank_id in ranks:
            if self.device.ranks[rank_id].state is PowerState.SELF_REFRESH:
                self.device.set_rank_state(rank_id, PowerState.STANDBY,
                                           now_s)

    def _split_local_hsn(self, hsn_local: int) -> tuple[int, int, int]:
        """Split a host-local HSN (no host-ID bits) into table indices."""
        segments_per_au = self.host_layout.segments_per_au
        au_offset = hsn_local % segments_per_au
        au_id = hsn_local // segments_per_au
        return 0, au_id, au_offset

    def hpa_of(self, au_index: int, au_offset: int, byte_offset: int = 0) -> int:
        """Build a host-local HPA for AU ``au_index``, segment ``au_offset``."""
        hsn_local = au_index * self.host_layout.segments_per_au + au_offset
        return self.host_layout.hpa_of(hsn_local, byte_offset)

    def pump_migrations(self, now_s: float, lines: int = 1,
                        busy_channels: set[int] | None = None) -> int:
        """Grant idle DRAM bandwidth to background consolidation copies.

        Only meaningful with ``background_migration=True``; returns the
        cachelines copied.
        """
        if self.power_down is None:
            return self.migration.step_all(busy_channels, lines)
        return self.power_down.pump(now_s, lines, busy_channels)

    # -- reliability -----------------------------------------------------------------

    def retire_rank(self, channel: int, rank: int,
                    now_s: float = 0.0) -> RetirementRecord:
        """Transparently retire a failing rank (reliability extension).

        Live segments are migrated off, the rank is fenced from all future
        allocation, and the device capacity shrinks by one rank — all
        invisible to the host.

        Raises:
            AllocationError: if the device has no retirement support
                (power-down disabled) or cannot absorb the evacuation.
        """
        if self.retirement is None:
            raise AllocationError(
                "rank retirement requires the power-down policy")
        return self.retirement.retire((channel, rank), now_s)

    # -- time hooks ----------------------------------------------------------------

    def end_window(self) -> None:
        """Close the self-refresh access-count window (call every 0.5 ms)."""
        if self.self_refresh is not None:
            self.self_refresh.end_window()
        self.trace.record(EventKind.WINDOW_CLOSE)

    def tick(self, now_ns: float) -> None:
        """Advance self-refresh timers; may trigger migrations + SR entry."""
        if self.self_refresh is not None:
            self.self_refresh.tick(now_ns)

    # -- telemetry -------------------------------------------------------------------

    def telemetry_snapshot(self, now_s: float | None = None) -> Snapshot:
        """Export every subsystem's metrics as one JSON-ready snapshot.

        Args:
            now_s: When given, per-rank power-state residency includes the
                open interval up to this simulated time.
        """
        smc = self.translation.smc
        self.metrics.gauge("smc.l1.hit_ratio").set(smc.l1.stats.hit_ratio)
        self.metrics.gauge("smc.l2.hit_ratio").set(smc.l2.stats.hit_ratio)
        residency = self.device.residency_by_rank(now_s)
        totals: dict[str, float] = {}
        for rank_key, states in residency.items():
            for state, seconds in states.items():
                totals[state] = totals.get(state, 0.0) + seconds
                self.metrics.gauge(
                    f"dram.rank.{rank_key}.residency_s.{state}").set(seconds)
        for state, seconds in totals.items():
            self.metrics.gauge(f"dram.residency_s.{state}").set(seconds)
        return self.metrics.snapshot(
            events=self.trace.counts_by_kind(),
            detail={"rank_residency_s": residency,
                    "trace": {"recorded": self.trace.recorded,
                              "dropped": self.trace.dropped}})

    # -- serialisation ----------------------------------------------------------------

    def state_dict(self) -> dict:
        """Complete mutable state of the controller and every subsystem.

        Together with the (immutable) :class:`~repro.core.config.DtlConfig`
        this fully determines future behaviour: a fresh controller built
        from the same config that loads this dict is observationally
        identical to the original (the restore-at-step-k identity suite
        in ``tests/checkpoint/`` pins this down for every simulator).

        The shared :class:`~repro.policies.Policy` instance is serialised
        once here — both hosts hold references to it, so loading it once
        restores observations for both sides.  Registry-backed counters
        (migration stats, SMC stats, host counters) restore through the
        single ``metrics`` entry; the per-subsystem dicts carry only
        structural state.
        """
        return {
            "metrics": self.metrics.state_dict(),
            "trace": self.trace.state_dict(),
            "device": self.device.state_dict(),
            "tables": self.tables.state_dict(),
            "translation": self.translation.state_dict(),
            "allocator": self.allocator.state_dict(),
            "migration": self.migration.state_dict(),
            "power_down": (self.power_down.state_dict()
                           if self.power_down is not None else None),
            "self_refresh": (self.self_refresh.state_dict()
                             if self.self_refresh is not None else None),
            "retirement": (self.retirement.state_dict()
                           if self.retirement is not None else None),
            "policy": (self.policy.state_dict()
                       if self.policy is not None else None),
            "faults": (self._faults.state_dict()
                       if self._faults is not None else None),
            "vms": [{"vm_id": vm.vm_id, "host_id": vm.host_id,
                     "au_ids": list(vm.au_ids),
                     "reserved_bytes": vm.reserved_bytes}
                    for vm in self._vms.values()],
            "next_vm_id": self._next_vm_id,
            "free_au_ids": {host_id: list(queue)
                            for host_id, queue
                            in self._free_au_ids.items()},
            "scalar_access_calls": self._scalar_access_calls,
            "scalar_access_warned": self._scalar_access_warned,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto this controller.

        The controller must have been built from the same
        :class:`~repro.core.config.DtlConfig` (geometry, cache layout,
        enabled subsystems); structural mismatches raise ``ValueError``.
        A fault injector must already be armed iff the checkpoint carried
        one — the plan is identity, not state.
        """
        # Metrics first: every registry-backed counter view (migration
        # stats, cache stats, host counters) reads through the registry,
        # so one load restores them all before structural state arrives.
        self.metrics.load_state_dict(state["metrics"])
        self.trace.load_state_dict(state["trace"])
        self.device.load_state_dict(state["device"])
        self.tables.load_state_dict(state["tables"])
        self.translation.load_state_dict(state["translation"])
        self.allocator.load_state_dict(state["allocator"])
        self.migration.load_state_dict(state["migration"])
        for name, host in (("power_down", self.power_down),
                           ("self_refresh", self.self_refresh),
                           ("retirement", self.retirement),
                           ("policy", self.policy)):
            saved = state[name]
            if (saved is None) != (host is None):
                raise ValueError(
                    f"{name} enabled-state mismatch: checkpoint was taken "
                    "with a different DtlConfig")
            if host is not None:
                host.load_state_dict(saved)
        if (state["faults"] is None) != (self._faults is None):
            raise ValueError(
                "fault-injector mismatch: arm the checkpoint's plan "
                "before load_state_dict (or disarm for a fault-free "
                "checkpoint)")
        if self._faults is not None:
            self._faults.load_state_dict(state["faults"])
        self._vms = {vm["vm_id"]: VmHandle(
            vm_id=vm["vm_id"], host_id=vm["host_id"],
            au_ids=tuple(vm["au_ids"]),
            reserved_bytes=vm["reserved_bytes"])
            for vm in state["vms"]}
        self._next_vm_id = state["next_vm_id"]
        self._free_au_ids = {host_id: deque(au_ids)
                             for host_id, au_ids
                             in state["free_au_ids"].items()}
        self._scalar_access_calls = state["scalar_access_calls"]
        self._scalar_access_warned = state["scalar_access_warned"]

    # -- internals -------------------------------------------------------------------

    def _on_migration_complete(self, request) -> None:
        """Mapping update after a migration copy finishes (Section 4.2)."""
        self.tables.remap_segment(request.hsn, request.new_dsn)
        self.translation.invalidate(request.hsn)
        self.allocator.move_allocation(request.old_dsn, request.new_dsn)
        if self.self_refresh is not None:
            # The CLOCK access bit tracks the segment's contents, so it
            # moves with the data; otherwise the TSP would read stale
            # hotness for both the vacated and the filled slot.
            self.self_refresh.on_segment_moved(request.old_dsn,
                                               request.new_dsn)


__all__ = ["SCALAR_ACCESS_WARN_THRESHOLD", "VmHandle", "AccessResult",
           "BatchAccessResult", "DtlController"]
