"""Ablation: segment mapping cache sizing (Table 3's 64 / 1024 entries).

Sweeps the L1/L2 SMC sizes and shows the paper's configuration sits where
the translation overhead has flattened: doubling the caches buys little,
halving them visibly hurts.
"""

import numpy as np
import pytest

from repro.core.addressing import HostAddressLayout
from repro.core.segment_cache import SegmentCacheConfig
from repro.core.translation import TranslationEngine
from repro.dram.geometry import DramGeometry
from repro.units import GIB
from repro.workloads.cloudsuite import PROFILES, TraceGenerator

from conftest import report


def run_config(l1_entries: int, l2_entries: int,
               num_accesses: int = 60_000) -> float:
    geometry = DramGeometry(rank_bytes=4 * GIB)
    layout = HostAddressLayout(geometry, au_bytes=2 * GIB)
    engine = TranslationEngine(layout, cache_config=SegmentCacheConfig(
        l1_entries=l1_entries, l2_entries=l2_entries))
    generator = TraceGenerator(PROFILES["data-caching"],
                               footprint_bytes=4 * GIB, seed=0)
    trace = generator.generate(num_accesses)
    segments_per_au = layout.segments_per_au
    for au_id in range(2):
        engine.tables.allocate_au(0, au_id)
    mapped = set()
    for raw in trace.addresses // np.uint64(geometry.segment_bytes):
        local = int(raw)
        hsn = layout.pack_hsn(0, local // segments_per_au,
                              local % segments_per_au)
        if hsn not in mapped:
            engine.tables.map_segment(hsn, len(mapped))
            mapped.add(hsn)
        engine.translate_hsn(hsn)
    return engine.mean_observed_latency_ns()


def test_ablation_smc_sizing(benchmark):
    def sweep():
        return {
            "quarter (16/256)": run_config(16, 256),
            "half (32/512)": run_config(32, 512),
            "paper (64/1024)": run_config(64, 1024),
            "double (128/2048)": run_config(128, 2048),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(name, f"{latency:.2f} ns")
            for name, latency in results.items()]
    report("Ablation: SMC sizing vs mean translation latency", rows,
           header=("config", "overhead"))
    # Shrinking below the paper's configuration hurts visibly
    # (quarter-size costs several-fold more translation latency)...
    assert results["quarter (16/256)"] > 2.0 * results["paper (64/1024)"]
    assert results["half (32/512)"] > 1.5 * results["paper (64/1024)"]
    # ...while doubling buys only a couple of nanoseconds.
    assert results["paper (64/1024)"] - results["double (128/2048)"] < 3.0


def test_ablation_l2_does_the_heavy_lifting():
    """Without the L2 SMC every L1 miss walks the tables."""
    with_l2 = run_config(64, 1024, num_accesses=30_000)
    without_l2 = run_config(64, 64, num_accesses=30_000)
    assert without_l2 > 1.5 * with_l2
