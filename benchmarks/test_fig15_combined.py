"""Figure 15: total savings with both mechanisms applied.

Paper: one powered-down rank-group alone saves 20.2 %; adding
hotness-aware self-refresh where unallocated memory suffices lifts total
savings to 25.6-32.3 %; the 8-rank configuration (no power-down possible)
still saves 14.9 % from self-refresh alone.
"""

import pytest

from repro.sim.combined import figure15_summary

from conftest import report

PAPER_COMBINED_LOW = 0.256
PAPER_COMBINED_HIGH = 0.323
PAPER_8RANK = 0.149


@pytest.fixture(scope="module")
def summary():
    return figure15_summary(duration_s=45.0)


def test_fig15_total_savings(benchmark, summary):
    rows_data = benchmark.pedantic(lambda: summary, rounds=1, iterations=1)
    rows = [(entry.point, f"{entry.active_ranks_per_channel}/ch",
             f"{entry.powerdown_savings:.1%}",
             f"{entry.selfrefresh_additional:.1%}",
             f"{entry.total_savings:.1%}") for entry in rows_data]
    rows.append(("paper 208gb", "6/ch", "20.2%", "+", "25.6-32.3%"))
    rows.append(("paper 304gb", "8/ch", "0%", "14.9%", "14.9%"))
    report("Figure 15: combined savings", rows,
           header=("point", "active", "power-down", "+self-refresh",
                   "total"))
    by_point = {entry.point: entry for entry in rows_data}

    # Shape 1: the 6-rank configurations with working self-refresh land in
    # (or near) the paper's combined band.
    best = by_point["208gb"].total_savings
    assert PAPER_COMBINED_LOW * 0.8 < best < PAPER_COMBINED_HIGH * 1.15
    # Shape 2: power-down alone bounds the 240 GB point (SR fails there).
    assert by_point["240gb"].selfrefresh_additional < 0.03
    assert by_point["240gb"].total_savings == pytest.approx(
        by_point["240gb"].powerdown_savings, abs=0.03)
    # Shape 3: 8-rank has no power-down but real self-refresh savings.
    assert by_point["304gb"].powerdown_savings == pytest.approx(0.0)
    assert 0.5 * PAPER_8RANK < by_point["304gb"].total_savings \
        < 1.5 * PAPER_8RANK


def test_fig15_ordering(summary):
    """Combined savings decrease with allocated capacity at 6 ranks."""
    by_point = {entry.point: entry for entry in summary}
    assert by_point["208gb"].total_savings >= \
        by_point["224gb"].total_savings >= \
        by_point["240gb"].total_savings - 0.01
