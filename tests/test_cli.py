"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig1"])
        assert args.seed == 0
        assert not args.quick
        assert args.duration == 60.0


class TestFastCommands:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "mean usage" in out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        assert "slowdown" in capsys.readouterr().out

    def test_fig5(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "CXL memory" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out and "Table 6" in out and "AMAT" in out

    def test_output_file(self, tmp_path, capsys):
        path = tmp_path / "records.json"
        assert main(["fig2", "--output", str(path)]) == 0
        records = json.loads(path.read_text())
        assert records[0]["experiment"] == "fig2"
        assert "slowdown_2ranks" in records[0]["metrics"]


class TestSimCommands:
    def test_fig14_single_point_short(self, capsys):
        assert main(["fig14", "--point", "208gb", "--duration", "3"]) == 0
        out = capsys.readouterr().out
        assert "208gb" in out

    def test_seed_changes_fig1(self, capsys):
        main(["fig1", "--seed", "1"])
        first = capsys.readouterr().out
        main(["fig1", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second


class TestStatsCommand:
    def test_stats_table(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "Telemetry counters" in out
        assert "smc.l1.hits" in out
        assert "Per-rank residency" in out

    def test_stats_json_is_parseable(self, capsys):
        assert main(["stats", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        # SMC hit ratios, migration counters, per-rank residency.
        assert 0.0 <= data["gauges"]["smc.l1.hit_ratio"] <= 1.0
        assert "migration.segments_migrated" in data["counters"]
        assert "ch0r0" in data["detail"]["rank_residency_s"]
        assert data["counters"]["dtl.accesses"] > 0

    def test_stats_records(self, capsys):
        from repro.cli import cmd_stats

        args = build_parser().parse_args(["stats"])
        records = cmd_stats(args)
        assert records[0].experiment == "stats"
        assert records[0].metrics["dtl.accesses"] > 0
        assert "smc.l1.hit_ratio" in records[0].metrics


class TestPlotFlag:
    def test_fig1_plot(self, capsys):
        from repro.cli import main
        assert main(["fig1", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "fig1: usage" in out
        assert "#" in out

    def test_fleet_quick(self, capsys):
        from repro.cli import main
        assert main(["fleet", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fleet-level DRAM savings" in out
        assert "annual cost" in out

    def test_validate(self, capsys):
        from repro.cli import main
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "Workload calibration" in out
        assert "within calibration tolerances" in out


class TestCheckpointCli:
    def test_exp_checkpoint_then_resume(self, capsys, tmp_path):
        path = tmp_path / "run.ckpt"
        assert main(["exp", "--name", "rank_sweep",
                     "--checkpoint", str(path),
                     "--checkpoint-every", "1"]) == 0
        first = capsys.readouterr().out
        assert path.exists()
        assert "checkpoints at" in first
        assert main(["exp", "--name", "rank_sweep",
                     "--checkpoint", str(path), "--resume"]) == 0
        second = capsys.readouterr().out
        assert "Resuming rank_sweep" in second
        # The resumed run reports the same metrics table.
        metrics = [line for line in first.splitlines() if "savings" in line]
        for line in metrics:
            assert line in second

    def test_resume_without_file_starts_fresh(self, capsys, tmp_path):
        path = tmp_path / "absent.ckpt"
        assert main(["exp", "--name", "rank_sweep",
                     "--checkpoint", str(path), "--resume"]) == 0
        assert "Running rank_sweep" in capsys.readouterr().out
        assert path.exists()


class TestCacheCli:
    def test_memory_only_notice(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_CACHE_DIR", raising=False)
        assert main(["cache"]) == 0
        assert "memory-only" in capsys.readouterr().out

    def test_stats_and_prune(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_CACHE_DIR", str(tmp_path))
        from repro.exec import ResultCache
        seeded = ResultCache()
        seeded.put("entry-a", b"x" * 8192)
        seeded.put("entry-b", b"y" * 8192)
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and " 2" in out
        assert main(["cache", "prune", "--max-mb", "0.000001"]) == 0
        out = capsys.readouterr().out
        assert "evicted" in out
        assert not list(tmp_path.glob("*.pkl"))

    def test_unknown_action_rejected(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_CACHE_DIR", str(tmp_path))
        with pytest.raises(SystemExit):
            main(["cache", "flush"])
