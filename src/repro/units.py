"""Common unit constants and helpers.

All sizes in the library are expressed in **bytes**, short times in
**nanoseconds** and schedule-level times in **seconds**, unless a name
explicitly says otherwise (``_s``, ``_ns``, ``_ms``).
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

CACHELINE_BYTES = 64

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


def ns_to_s(ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return ns / NS_PER_S


def s_to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return seconds * NS_PER_S


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Return log2 of a power-of-two integer, raising ``ValueError`` otherwise."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


def format_bytes(num_bytes: int) -> str:
    """Render a byte count using binary units (e.g. ``'2.0MiB'``)."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or unit == "TiB":
            if unit == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{unit}"
        value /= 1024
    raise AssertionError("unreachable")
