"""The Policy protocol surface: config, registry, shims, and the
built-in policies' unit behaviour (decisions on synthetic RankStats,
no simulator in the loop)."""

from __future__ import annotations

import warnings

import pytest

from repro.core.addressing import HostAddressLayout
from repro.core.allocator import SegmentAllocator
from repro.core.migration import MigrationEngine
from repro.core.power_down import RankPowerDownPolicy
from repro.core.self_refresh import HotnessSelfRefreshPolicy
from repro.core.tables import TranslationTables
from repro.core.translation import TranslationEngine
from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.dram.power import PowerState
from repro.policies import (AdaptiveDemotionPolicy, DemotionLevel,
                            DreamRemapPolicy, PaperPolicy, PolicyConfig,
                            RankAwareMigrationPolicy, RankIdleTracker,
                            RankStats, make_policy)
from repro.units import MIB


def stats(rank, allocated=0, free=8, utilization=0.0, access=0,
          window=0, last_window=0, channel=0,
          state=PowerState.STANDBY) -> RankStats:
    return RankStats(channel=channel, rank=rank, allocated=allocated,
                     free=free, utilization=utilization,
                     access_count=access, window_count=window,
                     last_window_count=last_window, state=state)


def powerdown_stack(**kwargs):
    geometry = DramGeometry(ranks_per_channel=4, rank_bytes=64 * MIB)
    device = DramDevice(geometry=geometry)
    allocator = SegmentAllocator(geometry)
    layout = HostAddressLayout(geometry, au_bytes=16 * MIB)
    tables = TranslationTables(layout)
    migration = MigrationEngine(geometry)
    return RankPowerDownPolicy(device, allocator, tables, migration,
                               **kwargs)


def selfrefresh_stack(**kwargs):
    geometry = DramGeometry(channels=2, ranks_per_channel=4,
                            rank_bytes=16 * MIB, segment_bytes=1 * MIB)
    device = DramDevice(geometry=geometry)
    allocator = SegmentAllocator(geometry)
    layout = HostAddressLayout(geometry, au_bytes=4 * MIB, max_hosts=2)
    tables = TranslationTables(layout)
    translation = TranslationEngine(layout, tables)
    migration = MigrationEngine(geometry)
    return HotnessSelfRefreshPolicy(device, allocator, tables, translation,
                                    migration, **kwargs)


class TestPolicyConfig:
    def test_replace_and_with_seed(self):
        config = PolicyConfig()
        assert config.name == "paper" and config.seed == 0
        tweaked = config.replace(group_granularity=2)
        assert tweaked.group_granularity == 2
        assert config.group_granularity == 1  # frozen original untouched
        assert config.with_seed(7).seed == 7
        assert tweaked.replace(group_granularity=1) == config

    def test_make_policy_accepts_config_name_or_default(self):
        assert isinstance(make_policy(), PaperPolicy)
        assert isinstance(make_policy("dream"), DreamRemapPolicy)
        by_config = make_policy(PolicyConfig(name="adaptive", seed=3))
        assert isinstance(by_config, AdaptiveDemotionPolicy)
        assert by_config.config.seed == 3

    def test_make_policy_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="rank_aware"):
            make_policy("no-such-policy")


class TestConfigOnlyConstructors:
    """The one-release loose-kwarg shim is gone: hosts take a
    :class:`PolicyConfig` and nothing else, and any loose keyword is a
    plain ``TypeError`` from the constructor signature itself."""

    def test_powerdown_legacy_kwargs_are_gone(self):
        with pytest.raises(TypeError, match="group_granularity"):
            powerdown_stack(group_granularity=2, min_active_groups=2)

    def test_selfrefresh_legacy_kwargs_are_gone(self):
        with pytest.raises(TypeError, match="window_ns"):
            selfrefresh_stack(window_ns=1000.0, tsp_scan_limit=7)

    def test_unknown_kwarg_is_a_typeerror(self):
        with pytest.raises(TypeError, match="bogus"):
            powerdown_stack(bogus=1)
        with pytest.raises(TypeError, match="bogus"):
            selfrefresh_stack(bogus=1)

    def test_shim_is_not_exported(self):
        import repro.policies as policies
        assert not hasattr(policies, "legacy_policy_config")

    def test_config_construction_stays_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            host = powerdown_stack(config=PolicyConfig(group_granularity=2))
            assert host.config.group_granularity == 2
            assert host.config.min_active_groups == 1
            sr_host = selfrefresh_stack(config=PolicyConfig(tsp_scan_limit=7))
            assert sr_host.tsp_scan_limit == 7


class TestPaperPolicy:
    def test_victims_are_least_allocated(self):
        policy = PaperPolicy()
        candidates = [stats(0, allocated=5), stats(1, allocated=1),
                      stats(2, allocated=3)]
        assert policy.powerdown_victims(0, candidates, 2) == [1, 2]

    def test_target_is_first_max_utilization(self):
        policy = PaperPolicy()
        candidates = [stats(0, utilization=0.5), stats(1, utilization=0.9),
                      stats(2, utilization=0.9)]
        assert policy.consolidation_target(candidates).rank == 1

    def test_victim_block_is_least_last_window_traffic(self):
        policy = PaperPolicy()
        blocks = [(0, 1), (2, 3)]
        table = {0: stats(0, last_window=9), 1: stats(1, last_window=9),
                 2: stats(2, last_window=1), 3: stats(3, last_window=1)}
        assert policy.sr_victim_block(0, blocks, table) == (2, 3)

    def test_demotion_is_static_per_site(self):
        policy = PaperPolicy()
        assert policy.demotion_level("powerdown", []) is DemotionLevel.MPSM
        assert policy.demotion_level("sr", []) is DemotionLevel.SELF_REFRESH


class TestRankAwarePolicy:
    def test_victims_are_coldest(self):
        policy = RankAwareMigrationPolicy()
        candidates = [stats(0, access=50), stats(1, access=5),
                      stats(2, access=20)]
        assert policy.powerdown_victims(0, candidates, 2) == [1, 2]

    def test_windowed_heat_outranks_cumulative(self):
        policy = RankAwareMigrationPolicy()
        candidates = [stats(0, access=100, window=1),
                      stats(1, access=5)]  # no window data: falls back
        assert policy.powerdown_victims(0, candidates, 1) == [0]

    def test_target_is_hottest_with_free(self):
        policy = RankAwareMigrationPolicy()
        candidates = [stats(0, access=10), stats(1, access=90)]
        assert policy.consolidation_target(candidates).rank == 1


class FakeSearch:
    """ColdSearch double returning scripted per-rank scan results."""

    def __init__(self, targets, counts, hits):
        self._targets = list(targets)
        self._counts = counts
        self._hits = dict(hits)
        self.scanned: list[int] = []

    @property
    def target_ranks(self):
        return list(self._targets)

    def window_count(self, rank):
        return self._counts.get(rank, 0)

    def last_window_count(self, rank):
        return 0

    def clock_scan(self):
        raise AssertionError("dream must not fall back to clock_scan")

    def scan_rank(self, rank):
        self.scanned.append(rank)
        return self._hits.get(rank)


class TestDreamPolicy:
    def test_scans_coldest_rank_first(self):
        policy = DreamRemapPolicy()
        search = FakeSearch(targets=[0, 1, 2], counts={0: 9, 1: 1, 2: 5},
                            hits={1: 41})
        assert policy.sr_cold_partner(0, search) == 41
        assert search.scanned == [1]

    def test_paces_the_start_across_calls(self):
        """Consecutive calls must not hammer one rank's CLOCK hand."""
        policy = DreamRemapPolicy()
        search = FakeSearch(targets=[0, 1, 2], counts={},
                            hits={0: 10, 1: 11, 2: 12})
        first = policy.sr_cold_partner(0, search)
        second = policy.sr_cold_partner(0, search)
        third = policy.sr_cold_partner(0, search)
        assert [first, second, third] == [10, 11, 12]

    def test_falls_through_to_next_cold_rank(self):
        policy = DreamRemapPolicy()
        search = FakeSearch(targets=[0, 1], counts={0: 1, 1: 9},
                            hits={1: 77})  # coldest rank has nothing
        assert policy.sr_cold_partner(0, search) == 77
        assert search.scanned == [0, 1]

    def test_empty_targets_returns_none(self):
        assert DreamRemapPolicy().sr_cold_partner(0, FakeSearch(
            targets=[], counts={}, hits={})) is None


class TestAdaptivePolicy:
    def feed(self, policy, site, rank, gaps):
        for gap in gaps:
            policy.observe_idle_gap(site, 0, rank, gap)

    def test_defaults_to_paper_without_history(self):
        policy = AdaptiveDemotionPolicy()
        group = [stats(0), stats(1)]
        assert policy.demotion_level("powerdown", group) \
            is DemotionLevel.MPSM
        assert policy.demotion_level("sr", group) \
            is DemotionLevel.SELF_REFRESH

    def test_short_parks_prefer_self_refresh(self):
        policy = AdaptiveDemotionPolicy(PolicyConfig(short_park_ns=1e9))
        self.feed(policy, "powerdown", 0, [1e6, 2e6, 3e6])
        assert policy.demotion_level("powerdown", [stats(0)]) \
            is DemotionLevel.SELF_REFRESH

    def test_long_parks_keep_mpsm(self):
        policy = AdaptiveDemotionPolicy(PolicyConfig(short_park_ns=1e9))
        self.feed(policy, "powerdown", 0, [5e9, 6e9, 7e9])
        assert policy.demotion_level("powerdown", [stats(0)]) \
            is DemotionLevel.MPSM

    def test_sr_thrash_answers_stay_active(self):
        policy = AdaptiveDemotionPolicy(PolicyConfig(sr_thrash_ns=2.5e8))
        self.feed(policy, "sr", 0, [1e6, 1e6, 1e6])
        assert policy.demotion_level("sr", [stats(0)]) \
            is DemotionLevel.STAY_ACTIVE

    def test_group_is_judged_by_its_most_restless_member(self):
        policy = AdaptiveDemotionPolicy(PolicyConfig(short_park_ns=1e9))
        self.feed(policy, "powerdown", 0, [5e9, 6e9, 7e9])  # long sleeper
        self.feed(policy, "powerdown", 1, [1e6, 1e6, 1e6])  # thrasher
        assert policy.demotion_level("powerdown",
                                     [stats(0), stats(1)]) \
            is DemotionLevel.SELF_REFRESH

    def test_partial_history_in_group_defaults(self):
        policy = AdaptiveDemotionPolicy(PolicyConfig(min_idle_samples=3))
        self.feed(policy, "powerdown", 0, [1e6, 1e6, 1e6])
        self.feed(policy, "powerdown", 1, [1e6])  # below min_idle_samples
        assert policy.demotion_level("powerdown",
                                     [stats(0), stats(1)]) \
            is DemotionLevel.MPSM


class TestIdleTracker:
    def test_median_and_bounded_history(self):
        tracker = RankIdleTracker(history=3)
        for gap in (1.0, 2.0, 3.0, 100.0):
            tracker.observe("sr", 0, 0, gap)
        assert tracker.samples("sr", 0, 0) == 3  # 1.0 fell off
        assert tracker.typical_gap_ns("sr", 0, 0) == 3.0

    def test_unseen_rank_is_empty(self):
        tracker = RankIdleTracker()
        assert tracker.samples("sr", 0, 9) == 0
        assert tracker.typical_gap_ns("sr", 0, 9) is None

    def test_history_must_be_positive(self):
        with pytest.raises(ValueError):
            RankIdleTracker(history=0)
