"""Analytical performance model for rank/interleaving sensitivity.

Reproduces the paper's performance experiments:

* **Figure 2** — execution-time change when the number of active ranks per
  channel shrinks from eight to two (paper: 0.7 % average loss at 2 ranks).
* **Figure 5** — cost of disabling rank interleaving, under local DRAM
  latency (paper: 1.7 %) and CXL latency (1.4 % — the same absolute
  queueing delta matters relatively less when the base latency is higher).

The model is a standard additive CPI decomposition: per kilo-instruction,

``T = T_core + MAPKI x AMAT_eff / MLP``

where ``AMAT_eff = base_latency + bank_queueing_delay``.  Bank queueing is
an M/D/1 waiting time over the banks visible to the workload's data:
with rank interleaving, data (and hence load) spreads over every rank's
banks; without it, a workload's footprint covers only the ranks that hold
its data, so the same load concentrates on fewer banks.  The effect is
small because bank- and channel-level parallelism already absorb most of
the load — which is precisely the paper's argument (Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import CXL_MEMORY_LATENCY_NS, NATIVE_DRAM_LATENCY_NS
from repro.units import CACHELINE_BYTES
from repro.workloads.cloudsuite import PROFILES, WorkloadProfile


@dataclass(frozen=True)
class PerfModelConfig:
    """Machine parameters for the performance model.

    Defaults model the Figure 2 testbed: 28 cores at 2.7 GHz over four
    DRAM channels.
    """

    cores: int = 28
    clock_ghz: float = 2.7
    channels: int = 4
    ranks_per_channel: int = 8
    banks_per_rank: int = 16
    bank_service_ns: float = 76.0
    mlp: float = 2.5
    core_utilization: float = 0.85


class PerformanceModel:
    """Execution-time estimates under different DRAM configurations."""

    def __init__(self, config: PerfModelConfig | None = None):
        self.config = config or PerfModelConfig()

    # -- components -----------------------------------------------------------------

    def access_rate_per_channel(self, profile: WorkloadProfile) -> float:
        """Post-cache accesses per second hitting one channel."""
        config = self.config
        instr_per_s = (config.cores * config.clock_ghz * 1e9 * profile.ipc
                       * config.core_utilization)
        return profile.mapki / 1000.0 * instr_per_s / config.channels

    def bank_queue_delay_ns(self, profile: WorkloadProfile,
                            visible_ranks: int) -> float:
        """M/D/1 mean waiting time at the banks of ``visible_ranks`` ranks."""
        if visible_ranks < 1:
            raise ValueError("need at least one visible rank")
        config = self.config
        banks = visible_ranks * config.banks_per_rank
        arrival_per_bank = self.access_rate_per_channel(profile) / banks
        rho = min(0.95, arrival_per_bank * config.bank_service_ns * 1e-9)
        return config.bank_service_ns * rho / (2.0 * (1.0 - rho))

    def time_per_kilo_instruction_ns(self, profile: WorkloadProfile,
                                     visible_ranks: int,
                                     memory_latency_ns: float) -> float:
        """Execution time of 1000 instructions under the configuration."""
        config = self.config
        core_ns = 1000.0 / (profile.ipc * config.clock_ghz)
        amat = memory_latency_ns + self.bank_queue_delay_ns(
            profile, visible_ranks)
        return core_ns + profile.mapki * amat / config.mlp

    # -- experiments -------------------------------------------------------------------

    def rank_sweep_slowdown(self, profile: WorkloadProfile,
                            active_ranks: int,
                            memory_latency_ns: float = NATIVE_DRAM_LATENCY_NS,
                            baseline_ranks: int | None = None) -> float:
        """Figure 2: relative execution time with fewer active ranks.

        Returns ``T(active) / T(baseline) - 1`` (positive = slower).
        """
        baseline = baseline_ranks or self.config.ranks_per_channel
        t_base = self.time_per_kilo_instruction_ns(profile, baseline,
                                                   memory_latency_ns)
        t_new = self.time_per_kilo_instruction_ns(profile, active_ranks,
                                                  memory_latency_ns)
        return t_new / t_base - 1.0

    def interleaving_slowdown(self, profile: WorkloadProfile,
                              memory_latency_ns: float,
                              footprint_rank_share: float = 0.125) -> float:
        """Figure 5: relative cost of disabling rank interleaving.

        With interleaving, a workload's accesses spread over every rank of
        a channel; without it, they cover only the ranks holding its data
        (``footprint_rank_share`` of the channel, at least one rank).
        """
        total = self.config.ranks_per_channel
        visible = max(1.0, footprint_rank_share * total)
        t_interleaved = self.time_per_kilo_instruction_ns(
            profile, total, memory_latency_ns)
        # Fractional visible ranks: interpolate the queue delay.
        config = self.config
        core_ns = 1000.0 / (profile.ipc * config.clock_ghz)
        banks = visible * config.banks_per_rank
        arrival_per_bank = self.access_rate_per_channel(profile) / banks
        rho = min(0.95, arrival_per_bank * config.bank_service_ns * 1e-9)
        queue = config.bank_service_ns * rho / (2.0 * (1.0 - rho))
        t_no_interleave = core_ns + profile.mapki * (
            memory_latency_ns + queue) / config.mlp
        return t_no_interleave / t_interleaved - 1.0

    # -- aggregates ----------------------------------------------------------------------

    def mean_rank_sweep_slowdown(self, active_ranks: int,
                                 memory_latency_ns: float =
                                 NATIVE_DRAM_LATENCY_NS) -> float:
        """Average Figure 2 slowdown over all ten CloudSuite profiles."""
        values = [self.rank_sweep_slowdown(profile, active_ranks,
                                           memory_latency_ns)
                  for profile in PROFILES.values()]
        return sum(values) / len(values)

    def mean_interleaving_slowdown(self, cxl: bool) -> float:
        """Average Figure 5 slowdown (local vs CXL latency)."""
        latency = CXL_MEMORY_LATENCY_NS if cxl else NATIVE_DRAM_LATENCY_NS
        values = [self.interleaving_slowdown(profile, latency)
                  for profile in PROFILES.values()]
        return sum(values) / len(values)


#: Paper constants used by the energy/performance post-processing
#: (Sections 5.1 and 6.2).
INTERLEAVING_OFF_PENALTY_CXL = 0.014
TRANSLATION_OVERHEAD = 0.0018


__all__ = [
    "PerfModelConfig",
    "PerformanceModel",
    "INTERLEAVING_OFF_PENALTY_CXL",
    "TRANSLATION_OVERHEAD",
]
