"""Baseline systems the paper compares against (or relates to)."""

from repro.baselines.interleaving import InterleavedMapping, SequentialMapping
from repro.baselines.ramzzz import RamzzzConfig, RamzzzPolicy
from repro.baselines.static import StaticCxlDevice

__all__ = ["InterleavedMapping", "SequentialMapping", "RamzzzConfig",
           "RamzzzPolicy", "StaticCxlDevice"]
