"""Stable hashing of experiment configs.

The on-disk result cache and the task labels both need a key that is
(a) identical across processes and interpreter runs — so ``hash()`` and
``id()`` are out — and (b) sensitive to every field of the config,
including nested dataclasses, so two configs that would simulate
different things can never collide onto one cache entry.

The canonical form is a JSON document: dataclasses become
``{"__dataclass__": "module.QualName", fields...}`` with fields sorted,
tuples become lists, numpy scalars become Python scalars, and floats are
serialised through ``repr`` (via JSON) so the full precision
participates in the key.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any


def canonical(value: Any) -> Any:
    """Reduce ``value`` to a JSON-serialisable canonical form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        body = {name: canonical(getattr(value, name))
                for name in sorted(f.name for f in
                                   dataclasses.fields(value))}
        body["__dataclass__"] = (f"{type(value).__module__}."
                                 f"{type(value).__qualname__}")
        return body
    if isinstance(value, dict):
        return {str(key): canonical(item)
                for key, item in sorted(value.items(), key=lambda kv:
                                        str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if hasattr(value, "item") and callable(value.item):
        # numpy scalar -> native Python scalar.
        return value.item()
    if isinstance(value, type):
        return f"{value.__module__}.{value.__qualname__}"
    # Last resort: a repr is stable for simple value objects; anything
    # with a default object repr (memory address) is rejected so cache
    # keys can never silently depend on process state.
    text = repr(value)
    if " at 0x" in text:
        raise TypeError(f"cannot canonicalise {type(value).__name__!r} "
                        "for a stable config hash")
    return text


def stable_hash(value: Any) -> str:
    """Hex digest of the canonical form of ``value``."""
    document = json.dumps(canonical(value), sort_keys=True,
                          separators=(",", ":"))
    return hashlib.sha256(document.encode()).hexdigest()


def task_key(experiment: str, config: Any, context: Any = None) -> str:
    """Cache key for running ``experiment`` on ``config``.

    ``context`` carries execution state that changes the result without
    living in the config — e.g. the ambiently armed
    :class:`~repro.faults.plan.FaultPlan` (see
    :func:`repro.faults.arming.hashing_context`).  ``None`` (the
    fault-free default) preserves the historical key format, so existing
    cached results stay addressable.
    """
    if context is None:
        return f"{experiment}-{stable_hash(config)[:32]}"
    combined = {"config": config, "context": context}
    return f"{experiment}-{stable_hash(combined)[:32]}"


def derive_seed(base_seed: int, *parts: Any) -> int:
    """Deterministic per-task seed from a base seed and task identity.

    Stable across processes and runs (unlike ``hash()``); the result is
    a non-negative 31-bit integer usable with every RNG in the package.
    """
    text = json.dumps([int(base_seed), [canonical(part) for part in parts]],
                      sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


__all__ = ["canonical", "stable_hash", "task_key", "derive_seed"]
