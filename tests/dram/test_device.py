"""Tests for the whole-device DRAM model."""

import pytest

from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.dram.power import DramPowerModel, PowerState
from repro.errors import PowerStateError
from repro.units import GIB


@pytest.fixture
def device():
    return DramDevice(geometry=DramGeometry(rank_bytes=1 * GIB))


class TestConstruction:
    def test_creates_all_ranks(self, device):
        assert len(device.ranks) == 32

    def test_mismatched_power_model_rejected(self):
        geo_a = DramGeometry(rank_bytes=1 * GIB)
        geo_b = DramGeometry(rank_bytes=2 * GIB)
        with pytest.raises(ValueError):
            DramDevice(geometry=geo_a,
                       power_model=DramPowerModel(geometry=geo_b))

    def test_unknown_rank_lookup(self, device):
        with pytest.raises(KeyError):
            device.rank(9, 0)


class TestLookups:
    def test_ranks_in_channel(self, device):
        ranks = device.ranks_in_channel(2)
        assert [r.index for r in ranks] == list(range(8))
        assert all(r.channel == 2 for r in ranks)

    def test_rank_group_spans_channels(self, device):
        group = device.rank_group(5)
        assert [r.channel for r in group] == [0, 1, 2, 3]
        assert all(r.index == 5 for r in group)

    def test_state_counts(self, device):
        device.set_rank_state((0, 0), PowerState.MPSM, 0.0)
        counts = device.state_counts()
        assert counts[PowerState.MPSM] == 1
        assert counts[PowerState.STANDBY] == 31

    def test_standby_per_channel(self, device):
        device.set_rank_state((1, 7), PowerState.SELF_REFRESH, 0.0)
        assert device.standby_ranks_per_channel(1) == 7
        assert device.standby_ranks_per_channel(0) == 8


class TestGroupTransitions:
    def test_rank_group_transition(self, device):
        device.set_rank_group_state(3, PowerState.MPSM, 0.0)
        assert all(device.rank(c, 3).state is PowerState.MPSM
                   for c in range(4))

    def test_group_exit_penalty(self, device):
        device.set_rank_group_state(3, PowerState.MPSM, 0.0)
        penalty = device.set_rank_group_state(3, PowerState.STANDBY, 1.0)
        assert penalty > 0

    def test_virtual_group_allows_different_indices(self, device):
        rank_ids = [(0, 1), (1, 4), (2, 2), (3, 7)]
        device.set_virtual_rank_group_state(rank_ids, PowerState.MPSM, 0.0)
        for rank_id in rank_ids:
            assert device.ranks[rank_id].state is PowerState.MPSM

    def test_virtual_group_requires_one_rank_per_channel(self, device):
        with pytest.raises(PowerStateError):
            device.set_virtual_rank_group_state(
                [(0, 1), (0, 2), (2, 3), (3, 4)], PowerState.MPSM, 0.0)


class TestPowerAndEnergy:
    def test_background_power_drops_with_mpsm(self, device):
        before = device.background_power()
        device.set_rank_group_state(0, PowerState.MPSM, 0.0)
        assert device.background_power() < before

    def test_total_power_includes_bandwidth(self, device):
        assert device.total_power(10.0) > device.total_power(0.0)

    def test_energy_integration(self, device):
        device.set_rank_group_state(0, PowerState.MPSM, 0.0)
        device.finalize(now_s=100.0)
        energy = device.background_energy()
        # 28 standby ranks + 4 MPSM ranks for 100 s.
        assert energy == pytest.approx(100.0 * (28 + 4 * 0.068))
