"""Stable hashing of config dataclasses and seed derivation."""

from dataclasses import dataclass, field

import pytest

from repro.exec.hashing import derive_seed, stable_hash, task_key
from repro.sim.powerdown_sim import PowerDownSimConfig


@dataclass(frozen=True)
class _Config:
    name: str = "x"
    seed: int = 0
    weights: tuple = (1.0, 2.0)
    extras: dict = field(default_factory=dict)


def test_equal_configs_hash_equal():
    assert stable_hash(_Config()) == stable_hash(_Config())
    assert stable_hash(_Config(extras={"a": 1, "b": 2})) == stable_hash(
        _Config(extras={"b": 2, "a": 1}))  # dict order must not matter


def test_any_field_change_changes_hash():
    base = stable_hash(_Config())
    assert stable_hash(_Config(seed=1)) != base
    assert stable_hash(_Config(name="y")) != base
    assert stable_hash(_Config(weights=(1.0,))) != base


def test_nested_dataclasses_hash():
    config = PowerDownSimConfig()
    assert stable_hash(config) == stable_hash(PowerDownSimConfig())
    assert stable_hash(config.with_seed(3)) != stable_hash(config)


def test_type_distinguishes_hash():
    @dataclass(frozen=True)
    class _Other:
        name: str = "x"
        seed: int = 0
        weights: tuple = (1.0, 2.0)
        extras: dict = field(default_factory=dict)

    assert stable_hash(_Other()) != stable_hash(_Config())


def test_unstable_values_rejected():
    with pytest.raises(TypeError):
        stable_hash(object())


def test_task_key_shape():
    key = task_key("fleet", _Config())
    assert key.startswith("fleet-")
    assert key == task_key("fleet", _Config())
    assert key != task_key("other", _Config())


def test_task_key_without_context_keeps_historical_format():
    # context=None must reproduce the pre-faults key byte-for-byte so
    # existing cached results stay valid.
    key = task_key("fleet", _Config())
    assert key == f"fleet-{stable_hash(_Config())[:32]}"
    assert task_key("fleet", _Config(), context=None) == key


def test_task_key_context_changes_key():
    from repro.faults import CxlLinkFault, FaultPlan, armed, hashing_context

    plain = task_key("fleet", _Config())
    plan = FaultPlan(seed=3, specs=(CxlLinkFault(period=5),))
    with armed(plan):
        chaotic = task_key("fleet", _Config(), context=hashing_context())
    assert chaotic != plain
    with armed(plan):
        assert task_key("fleet", _Config(),
                        context=hashing_context()) == chaotic
    with armed(FaultPlan(seed=4, specs=(CxlLinkFault(period=5),))):
        assert task_key("fleet", _Config(),
                        context=hashing_context()) != chaotic


def test_hashing_context_is_none_when_disarmed():
    from repro.faults import hashing_context

    assert hashing_context() is None
    assert task_key("fleet", _Config(),
                    context=hashing_context()) == task_key("fleet", _Config())


def test_derive_seed_deterministic_and_bounded():
    seeds = {derive_seed(0, "node", i) for i in range(100)}
    assert len(seeds) == 100  # no collisions on a small fan-out
    assert all(0 <= seed < 2 ** 31 for seed in seeds)
    assert derive_seed(7, "node", 3) == derive_seed(7, "node", 3)
    assert derive_seed(7, "node", 3) != derive_seed(8, "node", 3)
