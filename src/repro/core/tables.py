"""DTL translation tables: the three-level miss path plus reverse mapping.

The miss path (Figure 4) is:

1. **Host base address table** (on-chip SRAM) — host ID -> base of that
   host's AU table.
2. **AU table** (on-chip SRAM, one per host) — AU ID -> base address of the
   AU's slice of the segment mapping table.
3. **Segment mapping table** (in reserved DRAM) — AU offset -> DSN.

A **reverse mapping table** (DSN -> HSN, also in reserved DRAM) supports
mapping updates after data migration (Section 4.2).

Layout note (structure-of-arrays): the whole forward table is **one flat
preallocated int64 array** indexed directly by the packed HSN — exactly
how the hardware table is a flat region of reserved DRAM.  Per-AU
"slices" (:class:`AuMappingSlice`) are numpy views into that array, so
the three-level walk collapses to a bounds check plus a single gather:
``dsns = forward[hsns]``.  An ``UNMAPPED`` sentinel marks both
never-allocated and unmapped entries; a per-AU allocation bitmap keeps
"AU not allocated" and "segment not mapped" distinguishable for error
reporting.  The reverse table stays an ordinary dict: it is not on the
access hot path and callers (tests included) may probe arbitrary DSN
keys outside the device range.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.addressing import HostAddressLayout
from repro.errors import AddressError, AllocationError, TranslationError

UNMAPPED = -1


@dataclass
class WalkResult:
    """Outcome of a full table walk for one HSN."""

    dsn: int
    sram_accesses: int
    dram_accesses: int


class AuMappingSlice:
    """The segment mapping table slice for one allocated AU.

    Maps AU offsets (0 .. segments_per_au-1) to DSNs; ``UNMAPPED`` marks
    segments not yet backed by DRAM.  Backed by an int64 array — normally
    a view into :class:`TranslationTables`' flat forward table, so slice
    updates and whole-table gathers see the same storage — standalone
    construction with just a length keeps working for unit tests.
    """

    def __init__(self, au_id: int, segments_per_au: int,
                 backing: np.ndarray | None = None):
        self.au_id = au_id
        if backing is not None:
            self._dsns = backing
        else:
            self._dsns = np.full(segments_per_au, UNMAPPED, dtype=np.int64)

    def get(self, au_offset: int) -> int:
        """DSN for ``au_offset`` (may be :data:`UNMAPPED`)."""
        return int(self._dsns[au_offset])

    def set(self, au_offset: int, dsn: int) -> None:
        """Record that ``au_offset`` is backed by segment ``dsn``."""
        self._dsns[au_offset] = dsn

    def set_batch(self, au_offsets: np.ndarray, dsns: np.ndarray) -> None:
        """Scatter ``dsns`` into the slice at ``au_offsets``."""
        self._dsns[au_offsets] = dsns

    def get_batch(self, au_offsets: np.ndarray) -> np.ndarray:
        """Gather the DSNs at ``au_offsets`` (may contain UNMAPPED)."""
        return self._dsns[au_offsets]

    def clear(self, au_offset: int) -> int:
        """Unmap ``au_offset``; returns the previous DSN."""
        old = int(self._dsns[au_offset])
        self._dsns[au_offset] = UNMAPPED
        return old

    def mapped_offsets(self) -> list[int]:
        """AU offsets currently backed by a segment."""
        return [int(offset)
                for offset in np.nonzero(self._dsns != UNMAPPED)[0]]

    def __len__(self) -> int:
        return len(self._dsns)


class TranslationTables:
    """All DTL mapping state for one device.

    This class is purely functional bookkeeping — latency and energy of
    table accesses are accounted by the callers
    (:class:`repro.core.translation.TranslationEngine`).
    """

    def __init__(self, layout: HostAddressLayout):
        self.layout = layout
        # Flat forward table over the whole packed-HSN space.  Size is
        # max_hosts * max_aus_per_host * segments_per_au entries, i.e. at
        # most max_hosts * total_segments — a few MiB even at device
        # scale, and one gather resolves any HSN batch.
        self._forward = np.full(1 << layout.hsn_bits, UNMAPPED,
                                dtype=np.int64)
        # Allocation bitmap indexed by the (host_id | au_id) prefix, so
        # batch walks can distinguish "AU not allocated" from "segment
        # not mapped" without touching the per-AU objects.
        self._au_allocated = np.zeros(
            layout.max_hosts * layout.max_aus_per_host, dtype=bool)
        # host_id -> {au_id -> AuMappingSlice} view objects (lifecycle /
        # introspection; the slices alias _forward).
        self._hosts: dict[int, dict[int, AuMappingSlice]] = {}
        # DSN -> HSN reverse map.
        self._reverse: dict[int, int] = {}

    # -- prefix helpers -------------------------------------------------------

    def _prefix(self, host_id: int, au_id: int) -> int:
        return (host_id << self.layout.au_id_bits) | au_id

    def _slice_base(self, host_id: int, au_id: int) -> int:
        return self._prefix(host_id, au_id) << self.layout.au_offset_bits

    def _make_slice(self, host_id: int, au_id: int) -> AuMappingSlice:
        """Build the view object aliasing ``_forward`` for one AU."""
        base = self._slice_base(host_id, au_id)
        segments = self.layout.segments_per_au
        return AuMappingSlice(au_id, segments,
                              backing=self._forward[base:base + segments])

    # -- serialisation --------------------------------------------------------

    def __getstate__(self):
        # The AuMappingSlice objects alias _forward; pickling them as-is
        # would materialise independent copies and silently break the
        # aliasing on load.  Serialise just the AU ids and rebuild the
        # views in __setstate__.
        state = self.__dict__.copy()
        state["_hosts"] = {host_id: sorted(aus)
                          for host_id, aus in self._hosts.items()}
        return state

    def __setstate__(self, state):
        host_aus = state.pop("_hosts")
        self.__dict__.update(state)
        self._hosts = {
            host_id: {au_id: self._make_slice(host_id, au_id)
                      for au_id in au_ids}
            for host_id, au_ids in host_aus.items()}

    def state_dict(self) -> dict:
        """All mapping state as plain data (arrays are copies)."""
        return {"forward": self._forward.copy(),
                "au_allocated": self._au_allocated.copy(),
                "hosts": {host_id: sorted(aus)
                          for host_id, aus in self._hosts.items()},
                "reverse": dict(self._reverse)}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (same layout required)."""
        if len(state["forward"]) != len(self._forward):
            raise ValueError(
                "forward table size mismatch: checkpoint was taken with "
                "a different address layout")
        self._forward[:] = state["forward"]
        self._au_allocated[:] = state["au_allocated"]
        self._reverse = dict(state["reverse"])
        self._hosts = {
            host_id: {au_id: self._make_slice(host_id, au_id)
                      for au_id in au_ids}
            for host_id, au_ids in state["hosts"].items()}

    # -- AU lifecycle ---------------------------------------------------------

    def register_host(self, host_id: int) -> None:
        """Create the AU table for ``host_id`` if not present."""
        if not 0 <= host_id < self.layout.max_hosts:
            raise AddressError(f"host_id {host_id} out of range")
        self._hosts.setdefault(host_id, {})

    def allocate_au(self, host_id: int, au_id: int) -> AuMappingSlice:
        """Create the mapping slice for a newly allocated AU."""
        self.register_host(host_id)
        aus = self._hosts[host_id]
        if au_id in aus:
            raise AllocationError(
                f"AU {au_id} of host {host_id} already allocated")
        if not 0 <= au_id < self.layout.max_aus_per_host:
            raise AddressError(f"au_id {au_id} out of range")
        au_slice = self._make_slice(host_id, au_id)
        au_slice._dsns[:] = UNMAPPED
        aus[au_id] = au_slice
        self._au_allocated[self._prefix(host_id, au_id)] = True
        return aus[au_id]

    def free_au(self, host_id: int, au_id: int) -> list[int]:
        """Tear down an AU; returns the DSNs of its mapped segments."""
        au_slice = self._au_slice(host_id, au_id)
        dsns = []
        for au_offset in au_slice.mapped_offsets():
            dsn = au_slice.clear(au_offset)
            self._reverse.pop(dsn, None)
            dsns.append(dsn)
        del self._hosts[host_id][au_id]
        self._au_allocated[self._prefix(host_id, au_id)] = False
        return dsns

    def au_ids(self, host_id: int) -> list[int]:
        """AU IDs currently allocated for ``host_id``."""
        return sorted(self._hosts.get(host_id, {}))

    def _au_slice(self, host_id: int, au_id: int) -> AuMappingSlice:
        try:
            return self._hosts[host_id][au_id]
        except KeyError:
            raise TranslationError(
                f"AU {au_id} of host {host_id} is not allocated") from None

    # -- mapping --------------------------------------------------------------

    def map_segment(self, hsn: int, dsn: int) -> None:
        """Install the HSN -> DSN mapping (and its reverse)."""
        host_id, au_id, au_offset = self.layout.unpack_hsn(hsn)
        au_slice = self._au_slice(host_id, au_id)
        if au_slice.get(au_offset) != UNMAPPED:
            raise TranslationError(f"HSN {hsn:#x} is already mapped")
        if dsn in self._reverse:
            raise TranslationError(f"DSN {dsn:#x} is already in use")
        au_slice.set(au_offset, dsn)
        self._reverse[dsn] = hsn

    def map_au_segments(self, host_id: int, au_id: int,
                        dsns: np.ndarray) -> np.ndarray:
        """Install one AU's whole mapping slice in a single scatter.

        Equivalent to calling :meth:`map_segment` for every
        ``(au_offset, dsn)`` pair in order, with the same validation
        (already-mapped offsets and in-use DSNs are rejected before any
        state changes).  Returns the packed HSNs of the mapped segments.
        """
        au_slice = self._au_slice(host_id, au_id)
        dsns = np.asarray(dsns, dtype=np.int64)
        au_offsets = np.arange(len(dsns), dtype=np.int64)
        hsns = self.layout.pack_hsn_batch(host_id,
                                          np.full(len(dsns), au_id,
                                                  dtype=np.int64),
                                          au_offsets)
        if (au_slice.get_batch(au_offsets) != UNMAPPED).any():
            raise TranslationError(
                f"AU {au_id} of host {host_id} has mapped segments")
        if len(np.unique(dsns)) != len(dsns) or any(
                int(dsn) in self._reverse for dsn in dsns):
            raise TranslationError("DSN already in use in batch mapping")
        au_slice.set_batch(au_offsets, dsns)
        self._reverse.update(zip(map(int, dsns), map(int, hsns)))
        return hsns

    def remap_segment(self, hsn: int, new_dsn: int) -> int:
        """Point ``hsn`` at ``new_dsn`` after migration; returns the old DSN."""
        host_id, au_id, au_offset = self.layout.unpack_hsn(hsn)
        au_slice = self._au_slice(host_id, au_id)
        old_dsn = au_slice.get(au_offset)
        if old_dsn == UNMAPPED:
            raise TranslationError(f"HSN {hsn:#x} is not mapped")
        if new_dsn in self._reverse:
            raise TranslationError(f"DSN {new_dsn:#x} is already in use")
        au_slice.set(au_offset, new_dsn)
        del self._reverse[old_dsn]
        self._reverse[new_dsn] = hsn
        return old_dsn

    def swap_segments(self, hsn_a: int, hsn_b: int) -> None:
        """Exchange the DSNs of two mapped HSNs (hot/cold swap)."""
        dsn_a = self.walk(hsn_a).dsn
        dsn_b = self.walk(hsn_b).dsn
        self._forward[hsn_a] = dsn_b
        self._forward[hsn_b] = dsn_a
        self._reverse[dsn_a] = hsn_b
        self._reverse[dsn_b] = hsn_a

    def unmap_segment(self, hsn: int) -> int:
        """Remove the mapping for ``hsn``; returns the freed DSN."""
        host_id, au_id, au_offset = self.layout.unpack_hsn(hsn)
        au_slice = self._au_slice(host_id, au_id)
        dsn = au_slice.clear(au_offset)
        if dsn == UNMAPPED:
            raise TranslationError(f"HSN {hsn:#x} is not mapped")
        del self._reverse[dsn]
        return dsn

    # -- lookups --------------------------------------------------------------

    def walk(self, hsn: int) -> WalkResult:
        """Full three-level walk: 2 SRAM accesses + 1 DRAM access.

        Raises:
            TranslationError: if the HSN has no mapping.
        """
        if 0 <= hsn < len(self._forward):
            dsn = int(self._forward[hsn])
            if dsn != UNMAPPED:
                return WalkResult(dsn=dsn, sram_accesses=2, dram_accesses=1)
        # Error path: reproduce the level-by-level diagnostics.
        host_id, au_id, _ = self.layout.unpack_hsn(hsn)
        self._au_slice(host_id, au_id)
        raise TranslationError(f"HSN {hsn:#x} is not mapped")

    def walk_batch(self, hsns: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`walk`: one DSN per input HSN.

        The flat forward table turns the whole batch into a bounds check
        plus one gather, whatever mix of hosts and AUs it spans.

        Raises:
            TranslationError: if any HSN has no mapping.
        """
        hsns = np.asarray(hsns, dtype=np.int64)
        if not len(hsns):
            return np.empty(0, dtype=np.int64)
        if not (0 <= int(hsns.min())
                and int(hsns.max()) < (1 << self.layout.hsn_bits)):
            raise AddressError("HSN out of range in batch")
        dsns = self._forward[hsns]
        unmapped = dsns == UNMAPPED
        if unmapped.any():
            # Raise with the scalar walk's exact diagnostic for the first
            # failing HSN in input order.
            self.walk(int(hsns[np.argmax(unmapped)]))
        return dsns

    def try_walk(self, hsn: int) -> int | None:
        """Like :meth:`walk` but returns ``None`` for unmapped HSNs."""
        try:
            return self.walk(hsn).dsn
        except TranslationError:
            return None

    def hsn_of_dsn(self, dsn: int) -> int:
        """Reverse lookup: HSN mapped to ``dsn``.

        Raises:
            TranslationError: if the DSN holds no live segment.
        """
        try:
            return self._reverse[dsn]
        except KeyError:
            raise TranslationError(f"DSN {dsn:#x} holds no segment") from None

    def is_dsn_live(self, dsn: int) -> bool:
        """True if ``dsn`` currently backs some HSN."""
        return dsn in self._reverse

    def live_dsns(self) -> list[int]:
        """All DSNs currently backing segments."""
        return sorted(self._reverse)

    def live_mask(self, dsns: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`is_dsn_live` over a DSN array."""
        dsns = np.asarray(dsns, dtype=np.int64)
        if not len(dsns):
            return np.zeros(0, dtype=bool)
        if not self._reverse:
            return np.zeros(len(dsns), dtype=bool)
        live = np.fromiter(self._reverse, dtype=np.int64,
                           count=len(self._reverse))
        return np.isin(dsns, live)

    @property
    def mapped_segment_count(self) -> int:
        """Number of live HSN -> DSN mappings."""
        return len(self._reverse)


__all__ = [
    "UNMAPPED",
    "WalkResult",
    "AuMappingSlice",
    "TranslationTables",
]
