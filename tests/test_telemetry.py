"""Tests for the telemetry subsystem and its integration with the DTL.

Covers the registry primitives (counters, gauges, histograms), the event
trace ring buffer, snapshot export, and — most importantly — that the
registry-backed counters always agree with the legacy stats views the
subsystems still expose.
"""

import json

import pytest

from repro.core.config import DtlConfig
from repro.core.controller import DtlController
from repro.dram.geometry import DramGeometry
from repro.errors import ConfigurationError
from repro.telemetry import (DEFAULT_TRACE_CAPACITY, EventKind, EventTrace,
                             Histogram, MetricsRegistry, Snapshot)
from repro.units import GIB, MIB


class TestRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc()
        counter.inc(3)
        assert registry.counter("a.b") is counter
        assert registry.counter_values() == {"a.b": 4}

    def test_gauge_set(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(2.5)
        registry.gauge("g").set(1.0)
        assert registry.gauge_values() == {"g": 1.0}

    def test_cross_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")
        with pytest.raises(ConfigurationError):
            registry.histogram("x")

    def test_values_are_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("z").inc()
        registry.counter("a").inc()
        assert list(registry.counter_values()) == ["a", "z"]


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram("lat", bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        data = hist.to_dict()
        assert data["count"] == 4
        assert data["buckets"] == {"le_1": 2, "le_10": 1, "overflow": 1}
        assert data["mean"] == pytest.approx(26.625)

    def test_bounds_must_ascend(self):
        with pytest.raises(ConfigurationError):
            Histogram("bad", bounds=(10.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("empty", bounds=())

    def test_empty_mean_is_zero(self):
        assert Histogram("h").mean == 0.0


class TestEventTrace:
    def test_record_and_filter(self):
        trace = EventTrace()
        trace.record(EventKind.ACCESS, hsn=1)
        trace.record(EventKind.SMC_FILL, hsn=1, dsn=10)
        trace.record(EventKind.ACCESS, hsn=2)
        assert len(trace) == 3
        assert len(trace.events(EventKind.ACCESS)) == 2
        assert trace.events(EventKind.SMC_FILL)[0].data["dsn"] == 10

    def test_ring_buffer_drops_oldest(self):
        trace = EventTrace(capacity=4)
        for index in range(10):
            trace.record(EventKind.ACCESS, hsn=index)
        assert len(trace) == 4
        assert trace.recorded == 10
        assert trace.dropped == 6
        assert [event.data["hsn"] for event in trace] == [6, 7, 8, 9]

    def test_counts_survive_drops_and_clear(self):
        trace = EventTrace(capacity=2)
        for _ in range(5):
            trace.record(EventKind.MIGRATION_ABORT)
        trace.clear()
        assert trace.counts_by_kind() == {"migration_abort": 5}
        assert len(trace) == 0

    def test_default_capacity(self):
        assert EventTrace().capacity == DEFAULT_TRACE_CAPACITY


class TestSnapshot:
    def test_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(0.5)
        registry.histogram("h").observe(3.0)
        snapshot = registry.snapshot(events={"access": 7},
                                     detail={"extra": [1, 2]})
        data = json.loads(snapshot.to_json())
        assert data["counters"] == {"c": 2}
        assert data["gauges"] == {"g": 0.5}
        assert data["histograms"]["h"]["count"] == 1
        assert data["events"] == {"access": 7}
        assert data["detail"] == {"extra": [1, 2]}

    def test_empty_snapshot(self):
        snapshot = Snapshot()
        assert snapshot.to_dict() == {"counters": {}, "gauges": {},
                                      "histograms": {}, "events": {},
                                      "detail": {}}


@pytest.fixture
def controller():
    return DtlController(DtlConfig(
        geometry=DramGeometry(rank_bytes=256 * MIB), au_bytes=64 * MIB))


def exercise(controller):
    """Allocate, touch memory, deallocate: generates telemetry."""
    vm_a = controller.allocate_vm(0, 1 * GIB, now_s=0.0)
    vm_b = controller.allocate_vm(1, 256 * MIB, now_s=1.0)
    for au_id in vm_a.au_ids[:4]:
        for offset in range(8):
            controller.access(0, controller.hpa_of(au_id, offset),
                              is_write=(offset % 2 == 0))
    for offset in range(8):
        controller.access(1, controller.hpa_of(vm_b.au_ids[0], offset))
    controller.deallocate_vm(vm_a, now_s=50.0)
    controller.end_window()
    return vm_b


class TestControllerIntegration:
    """The registry is the single source of truth: every legacy stats
    view must agree with the counters it is backed by."""

    def test_smc_counters_agree_with_stats_views(self, controller):
        exercise(controller)
        counters = controller.metrics.counter_values()
        smc = controller.translation.smc
        assert counters["smc.l1.hits"] == smc.l1.stats.hits
        assert counters["smc.l1.misses"] == smc.l1.stats.misses
        assert counters["smc.l2.hits"] == smc.l2.stats.hits
        assert counters["smc.l2.misses"] == smc.l2.stats.misses
        assert counters["smc.l1.invalidations"] == smc.l1.stats.invalidations
        assert smc.l1.stats.hits + smc.l1.stats.misses > 0

    def test_migration_counters_agree_with_stats_view(self, controller):
        exercise(controller)
        counters = controller.metrics.counter_values()
        stats = controller.migration.stats
        assert counters["migration.segments_migrated"] == \
            stats.segments_migrated
        assert counters["migration.lines_copied"] == stats.lines_copied
        assert counters["migration.aborts"] == stats.aborts
        assert counters["migration.requeues"] == stats.requeues

    def test_translation_counters_agree_with_views(self, controller):
        exercise(controller)
        counters = controller.metrics.counter_values()
        assert counters["translation.count"] == \
            controller.translation.translation_count
        assert counters["translation.latency_total_ns"] == pytest.approx(
            controller.translation.total_latency_ns)
        assert counters["dtl.accesses"] == controller.access_count

    def test_access_histogram_counts_every_access(self, controller):
        exercise(controller)
        hist = controller.metrics.histogram_values()["dtl.access_latency_ns"]
        assert hist["count"] == controller.access_count

    def test_trace_records_datapath_events(self, controller):
        exercise(controller)
        events = controller.trace.counts_by_kind()
        assert events["access"] == controller.access_count
        assert events["smc_fill"] > 0
        assert events["window_close"] == 1
        assert "power_transition" in events  # deallocation -> MPSM

    def test_snapshot_contains_required_sections(self, controller):
        exercise(controller)
        snapshot = controller.telemetry_snapshot(now_s=100.0)
        data = snapshot.to_dict()
        # SMC hit ratios.
        assert 0.0 <= data["gauges"]["smc.l1.hit_ratio"] <= 1.0
        assert 0.0 <= data["gauges"]["smc.l2.hit_ratio"] <= 1.0
        # Migration counters.
        assert "migration.segments_migrated" in data["counters"]
        # Per-rank power-state residency, plus aggregates.
        residency = data["detail"]["rank_residency_s"]
        geometry = controller.geometry
        assert len(residency) == geometry.channels \
            * geometry.ranks_per_channel
        assert "ch0r0" in residency
        assert data["gauges"]["dram.rank.ch0r0.residency_s.standby"] >= 0.0
        total = sum(sum(states.values()) for states in residency.values())
        assert total == pytest.approx(100.0 * len(residency))

    def test_snapshot_is_json_serialisable(self, controller):
        exercise(controller)
        text = controller.telemetry_snapshot(now_s=100.0).to_json(indent=2)
        assert json.loads(text)["counters"]["dtl.accesses"] \
            == controller.access_count

    def test_power_transitions_counted(self, controller):
        exercise(controller)
        counters = controller.metrics.counter_values()
        assert counters.get("dram.power_transitions", 0) > 0
        per_state = sum(value for name, value in counters.items()
                        if name.startswith("dram.power_transitions.to_"))
        assert per_state == counters["dram.power_transitions"]


class TestSimulationSurface:
    def test_powerdown_result_carries_telemetry(self):
        from repro.host.scheduler import SchedulerConfig
        from repro.sim.powerdown_sim import (PowerDownSimConfig,
                                             PowerDownSimulator)
        from repro.sim.results import flatten_telemetry
        from repro.workloads.azure import AzureTraceConfig

        duration = 1800.0
        config = PowerDownSimConfig(
            azure=AzureTraceConfig(num_vms=20, duration_s=duration),
            scheduler=SchedulerConfig(duration_s=duration))
        result = PowerDownSimulator(config).run()
        assert result.telemetry["counters"]
        assert len(result.window_snapshots) == len(result.intervals)
        assert result.window_snapshots[-1]["time_s"] == duration
        # Per-window counters are monotonic prefixes of the final state.
        final = result.telemetry["counters"]
        for snapshot in result.window_snapshots:
            for name, value in snapshot["counters"].items():
                assert value <= final.get(name, 0) or value == 0
        flat = flatten_telemetry(result.telemetry)
        assert flat["migration.segments_migrated"] \
            == final["migration.segments_migrated"]
        assert "event.window_close" in flat

    def test_fleet_telemetry_totals_sum_nodes(self):
        """A 2-node fleet's totals equal the sum of two 1-node fleets."""
        from repro.exec import ExecConfig
        from repro.host.scheduler import SchedulerConfig
        from repro.sim.fleet import FleetConfig, FleetSimulator
        from repro.sim.powerdown_sim import PowerDownSimConfig
        from repro.workloads.azure import AzureTraceConfig

        node = PowerDownSimConfig(
            azure=AzureTraceConfig(num_vms=15, duration_s=1800.0),
            scheduler=SchedulerConfig(duration_s=1800.0))
        serial = ExecConfig(workers=1)

        def totals(num_nodes, base_seed):
            config = FleetConfig(num_nodes=num_nodes, node=node,
                                 base_seed=base_seed)
            return FleetSimulator(config, serial).run().telemetry_totals()

        both = totals(2, base_seed=0)
        assert both
        assert both["fleet.nodes_reporting"] == 2.0
        first = totals(1, base_seed=0)
        second = totals(1, base_seed=1)
        key = "migration.segments_migrated"
        assert both[key] == first[key] + second[key]
